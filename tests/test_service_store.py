"""Content-addressed result store: keys, integrity, eviction, races."""

import dataclasses
import json
import multiprocessing

import pytest

from repro.common.params import make_casino_config, make_ino_config
from repro.service.jobs import JobSpec, execute_job
from repro.service.store import ResultStore, encode_record, result_key
from repro.workloads.suite import SUITE


def _spec(core="ino", app="hmmer", n=1200, warmup=200, **kw):
    factory = {"ino": make_ino_config, "casino": make_casino_config}[core]
    return JobSpec.make(factory(), SUITE[app], n_instrs=n, warmup=warmup,
                        **kw)


class TestResultKey:
    def test_stable(self):
        cfg, profile = make_ino_config(), SUITE["hmmer"]
        assert result_key(cfg, profile, 1000, 200) == \
            result_key(cfg, profile, 1000, 200)

    def test_sensitive_to_identity(self):
        cfg, profile = make_ino_config(), SUITE["hmmer"]
        base = result_key(cfg, profile, 1000, 200)
        assert result_key(make_casino_config(), profile, 1000, 200) != base
        assert result_key(cfg, SUITE["mcf"], 1000, 200) != base
        assert result_key(cfg, profile, 2000, 200) != base
        assert result_key(cfg, profile, 1000, 100) != base
        reseeded = dataclasses.replace(profile, seed=profile.seed + 1)
        assert result_key(cfg, reseeded, 1000, 200) != base

    def test_sensitive_to_interpreter(self, monkeypatch):
        """S1: a store must never serve results computed under a
        different interpreter build — the tag is part of the key."""
        cfg, profile = make_ino_config(), SUITE["hmmer"]
        base = result_key(cfg, profile, 1000, 200)
        monkeypatch.setattr("repro.service.store.interpreter_tag",
                            lambda: "pypy-9.9-win32-arm64")
        assert result_key(cfg, profile, 1000, 200) != base


class TestStoreBasics:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = {"app": "hmmer", "ipc": 0.5, "counters": {"cycles": 10.0}}
        assert store.get("ab" * 16) is None
        assert store.stats["misses"] == 1
        store.put("ab" * 16, record)
        assert store.get("ab" * 16) == record
        assert store.stats["hits"] == 1 and store.stats["writes"] == 1
        assert len(store) == 1 and ("ab" * 16) in store

    def test_bytes_deterministic(self, tmp_path):
        record = {"b": 2, "a": 1, "nested": {"y": 0.25, "x": [1, 2]}}
        assert encode_record("k1", record) == encode_record("k1", record)
        # Key order of the input dict must not matter.
        reordered = json.loads(json.dumps(record, sort_keys=True))
        assert encode_record("k1", reordered) == encode_record("k1", record)

    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "cd" * 16
        store.put(key, {"ipc": 1.0})
        path = store._path(key)
        path.write_bytes(b"{ not json at all")
        assert store.get(key) is None
        assert store.stats["quarantined"] == 1
        assert not path.exists()
        assert list((store.root / "quarantine").iterdir())
        # The caller recomputes and the store heals.
        store.put(key, {"ipc": 1.0})
        assert store.get(key) == {"ipc": 1.0}

    def test_tampered_payload_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "ef" * 16
        store.put(key, {"ipc": 1.0})
        path = store._path(key)
        envelope = json.loads(path.read_text())
        envelope["record"]["ipc"] = 9.9  # digest no longer matches
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None
        assert store.stats["quarantined"] == 1

    def test_wrong_key_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("11" * 16, {"ipc": 1.0})
        raw = store._path("11" * 16).read_bytes()
        other = "22" * 16
        store._path(other).parent.mkdir(parents=True, exist_ok=True)
        store._path(other).write_bytes(raw)
        assert store.get(other) is None

    def test_lru_eviction(self, tmp_path):
        import os
        import time
        store = ResultStore(tmp_path / "store", max_entries=2)
        keys = [f"{i:02d}" * 16 for i in range(3)]
        for i, key in enumerate(keys[:2]):
            store.put(key, {"i": i})
            os.utime(store._path(key), (time.time() - 100 + i, ) * 2)
        # Touch the oldest so the *other* one is LRU.
        assert store.get(keys[0]) is not None
        os.utime(store._path(keys[0]), None)
        store.put(keys[2], {"i": 2})
        assert store.stats["evictions"] == 1
        assert keys[1] not in store
        assert keys[0] in store and keys[2] in store
        assert len(store) == 2


def _race_worker(store_dir, spec, out_q):
    store = ResultStore(store_dir)
    record = execute_job(spec)
    key = spec.key()
    store.put(key, record)
    out_q.put(store.get_bytes(key))


class TestConcurrentAccess:
    def test_two_writers_same_key_read_identical_bytes(self, tmp_path):
        """Two processes computing the same key race cleanly: atomic
        replace + canonical serialisation make the write idempotent."""
        spec = _spec(n=800, warmup=100)
        ctx = multiprocessing.get_context()
        out_q = ctx.Queue()
        procs = [ctx.Process(target=_race_worker,
                             args=(str(tmp_path / "store"), spec, out_q))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        raws = [out_q.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=30)
        assert raws[0] is not None
        assert raws[0] == raws[1]
        store = ResultStore(tmp_path / "store")
        assert len(store) == 1
        assert store.get_bytes(spec.key()) == raws[0]

    def test_pool_workers_racing_same_spec(self, tmp_path):
        """Submitting the same spec twice before either completes makes
        two workers compute the same key; both resolve identically and
        exactly one store entry results."""
        from repro.service.pool import SimulationPool
        store = ResultStore(tmp_path / "store")
        spec = _spec(n=800, warmup=100)
        with SimulationPool(n_workers=2, store=store) as pool:
            first = pool.submit(spec)
            second = pool.submit(spec)  # store still cold: both dispatch
            pool.wait([first, second])
            rec_a, rec_b = pool.record(first), pool.record(second)
        assert rec_a == rec_b
        assert not rec_a["failed"]
        assert len(store) == 1
