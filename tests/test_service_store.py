"""Content-addressed result store: keys, integrity, eviction, races."""

import dataclasses
import json
import multiprocessing

import pytest

from repro.common.params import make_casino_config, make_ino_config
from repro.service.jobs import JobSpec, execute_job
from repro.service.store import ResultStore, encode_record, result_key
from repro.workloads.suite import SUITE


def _spec(core="ino", app="hmmer", n=1200, warmup=200, **kw):
    factory = {"ino": make_ino_config, "casino": make_casino_config}[core]
    return JobSpec.make(factory(), SUITE[app], n_instrs=n, warmup=warmup,
                        **kw)


class TestResultKey:
    def test_stable(self):
        cfg, profile = make_ino_config(), SUITE["hmmer"]
        assert result_key(cfg, profile, 1000, 200) == \
            result_key(cfg, profile, 1000, 200)

    def test_sensitive_to_identity(self):
        cfg, profile = make_ino_config(), SUITE["hmmer"]
        base = result_key(cfg, profile, 1000, 200)
        assert result_key(make_casino_config(), profile, 1000, 200) != base
        assert result_key(cfg, SUITE["mcf"], 1000, 200) != base
        assert result_key(cfg, profile, 2000, 200) != base
        assert result_key(cfg, profile, 1000, 100) != base
        reseeded = dataclasses.replace(profile, seed=profile.seed + 1)
        assert result_key(cfg, reseeded, 1000, 200) != base

    def test_sensitive_to_interpreter(self, monkeypatch):
        """S1: a store must never serve results computed under a
        different interpreter build — the tag is part of the key."""
        cfg, profile = make_ino_config(), SUITE["hmmer"]
        base = result_key(cfg, profile, 1000, 200)
        monkeypatch.setattr("repro.service.store.interpreter_tag",
                            lambda: "pypy-9.9-win32-arm64")
        assert result_key(cfg, profile, 1000, 200) != base


class TestStoreBasics:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = {"app": "hmmer", "ipc": 0.5, "counters": {"cycles": 10.0}}
        assert store.get("ab" * 16) is None
        assert store.stats["misses"] == 1
        store.put("ab" * 16, record)
        assert store.get("ab" * 16) == record
        assert store.stats["hits"] == 1 and store.stats["writes"] == 1
        assert len(store) == 1 and ("ab" * 16) in store

    def test_bytes_deterministic(self, tmp_path):
        record = {"b": 2, "a": 1, "nested": {"y": 0.25, "x": [1, 2]}}
        assert encode_record("k1", record) == encode_record("k1", record)
        # Key order of the input dict must not matter.
        reordered = json.loads(json.dumps(record, sort_keys=True))
        assert encode_record("k1", reordered) == encode_record("k1", record)

    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "cd" * 16
        store.put(key, {"ipc": 1.0})
        path = store._path(key)
        path.write_bytes(b"{ not json at all")
        assert store.get(key) is None
        assert store.stats["quarantined"] == 1
        assert not path.exists()
        assert list((store.root / "quarantine").iterdir())
        # The caller recomputes and the store heals.
        store.put(key, {"ipc": 1.0})
        assert store.get(key) == {"ipc": 1.0}

    def test_tampered_payload_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "ef" * 16
        store.put(key, {"ipc": 1.0})
        path = store._path(key)
        envelope = json.loads(path.read_text())
        envelope["record"]["ipc"] = 9.9  # digest no longer matches
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None
        assert store.stats["quarantined"] == 1

    def test_wrong_key_detected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("11" * 16, {"ipc": 1.0})
        raw = store._path("11" * 16).read_bytes()
        other = "22" * 16
        store._path(other).parent.mkdir(parents=True, exist_ok=True)
        store._path(other).write_bytes(raw)
        assert store.get(other) is None

    def test_lru_eviction(self, tmp_path):
        import os
        import time
        store = ResultStore(tmp_path / "store", max_entries=2)
        keys = [f"{i:02d}" * 16 for i in range(3)]
        for i, key in enumerate(keys[:2]):
            store.put(key, {"i": i})
            os.utime(store._path(key), (time.time() - 100 + i, ) * 2)
        # Touch the oldest so the *other* one is LRU.
        assert store.get(keys[0]) is not None
        os.utime(store._path(keys[0]), None)
        store.put(keys[2], {"i": 2})
        assert store.stats["evictions"] == 1
        assert keys[1] not in store
        assert keys[0] in store and keys[2] in store
        assert len(store) == 2


def _race_worker(store_dir, spec, out_q):
    store = ResultStore(store_dir)
    record = execute_job(spec)
    key = spec.key()
    store.put(key, record)
    out_q.put(store.get_bytes(key))


class TestConcurrentAccess:
    def test_two_writers_same_key_read_identical_bytes(self, tmp_path):
        """Two processes computing the same key race cleanly: atomic
        replace + canonical serialisation make the write idempotent."""
        spec = _spec(n=800, warmup=100)
        ctx = multiprocessing.get_context()
        out_q = ctx.Queue()
        procs = [ctx.Process(target=_race_worker,
                             args=(str(tmp_path / "store"), spec, out_q))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        raws = [out_q.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=30)
        assert raws[0] is not None
        assert raws[0] == raws[1]
        store = ResultStore(tmp_path / "store")
        assert len(store) == 1
        assert store.get_bytes(spec.key()) == raws[0]

    def test_pool_workers_racing_same_spec(self, tmp_path):
        """Submitting the same spec twice before either completes makes
        two workers compute the same key; both resolve identically and
        exactly one store entry results."""
        from repro.service.pool import SimulationPool
        store = ResultStore(tmp_path / "store")
        spec = _spec(n=800, warmup=100)
        with SimulationPool(n_workers=2, store=store) as pool:
            first = pool.submit(spec)
            second = pool.submit(spec)  # store still cold: both dispatch
            pool.wait([first, second])
            rec_a, rec_b = pool.record(first), pool.record(second)
        assert rec_a == rec_b
        assert not rec_a["failed"]
        assert len(store) == 1


class TestTraceStore:
    def test_roundtrip_bit_identical_timing(self, tmp_path):
        """A trace served from the store must drive the exact same
        simulation as the freshly generated one."""
        from repro.cores import build_core
        from repro.obs.provenance import counter_digest
        from repro.service.store import TraceStore
        from repro.workloads.generator import SyntheticWorkload

        profile = SUITE["mcf"]
        store = TraceStore(tmp_path / "traces")
        assert store.get(profile, 1500) is None
        trace = SyntheticWorkload(profile).generate(1500)
        store.put(profile, 1500, trace)
        served = store.get(profile, 1500)
        assert served is not None and len(served) == len(trace)
        cfg = make_casino_config()
        fresh = build_core(cfg).run(trace, warmup=300)
        cached = build_core(cfg).run(served, warmup=300)
        assert counter_digest(fresh) == counter_digest(cached)
        assert store.stats_snapshot() == {
            "hits": 1, "misses": 1, "writes": 1, "corrupt": 0,
            "fetched": 0, "quarantined": 0}

    def test_key_sensitive_to_identity(self, tmp_path):
        from repro.service.store import trace_key
        profile = SUITE["hmmer"]
        base = trace_key(profile, 1000)
        assert trace_key(profile, 2000) != base
        assert trace_key(SUITE["mcf"], 1000) != base
        reseeded = dataclasses.replace(profile, seed=profile.seed + 1)
        assert trace_key(reseeded, 1000) != base

    def test_corrupt_entry_deleted_and_regenerated(self, tmp_path):
        from repro.service.store import TraceStore, trace_key
        from repro.workloads.generator import SyntheticWorkload

        profile = SUITE["hmmer"]
        store = TraceStore(tmp_path / "traces")
        store.put(profile, 800, SyntheticWorkload(profile).generate(800))
        path = store._path(trace_key(profile, 800))
        path.write_bytes(b"not a pickle")
        assert store.get(profile, 800) is None
        assert store.stats["corrupt"] == 1
        assert not path.exists()

    def test_result_store_ignores_trace_shard(self, tmp_path):
        """The pool roots the trace cache under the result store; result
        enumeration and eviction must never touch it."""
        from repro.service.store import TraceStore
        from repro.workloads.generator import SyntheticWorkload

        results = ResultStore(tmp_path / "store", max_entries=1)
        traces = TraceStore(results.root / "traces")
        traces.put(SUITE["hmmer"], 500,
                   SyntheticWorkload(SUITE["hmmer"]).generate(500))
        results.put("ab" * 16, {"ipc": 1.0})
        results.put("cd" * 16, {"ipc": 2.0})  # evicts the older record
        assert len(results) == 1
        assert traces.get(SUITE["hmmer"], 500) is not None

    def test_runner_shares_via_store(self, tmp_path):
        """Two runners (processes, in the service) with empty LRU caches
        share one generation through the on-disk store."""
        from repro.harness.runner import Runner
        from repro.service.store import TraceStore

        profile = SUITE["mcf"]
        first = Runner(n_instrs=1000, warmup=200,
                       trace_store=TraceStore(tmp_path / "traces"))
        second = Runner(n_instrs=1000, warmup=200,
                        trace_store=TraceStore(tmp_path / "traces"))
        generated = first.trace(profile)
        served = second.trace(profile)
        assert first.trace_store.stats_snapshot()["writes"] == 1
        assert second.trace_store.stats_snapshot()["hits"] == 1
        assert [i.seq for i in served] == [i.seq for i in generated]

    def test_pool_reports_trace_store_stats(self, tmp_path):
        from repro.service.pool import SimulationPool

        store = ResultStore(tmp_path / "store")
        with SimulationPool(n_workers=2, store=store) as pool:
            records = pool.run_batch(
                [_spec(core="ino", n=800, warmup=100),
                 _spec(core="casino", n=800, warmup=100)])
            snapshot = pool.stats_snapshot()
        assert all(not r.get("failed") for r in records)
        trace_stats = snapshot["trace_store"]
        # Both jobs need the same hmmer trace: exactly one worker
        # generates (writes) it; any other consumer hits.
        assert trace_stats["writes"] >= 1
        assert (store.root / "traces").is_dir()
