"""Regression bands: the headline numbers on a fixed quick subset.

The simulator is fully deterministic, so these bands (intentionally loose,
~±10%) only trip when a change moves the *science* — scheduling behaviour,
memory system, or calibration — not on refactors.  Update the bands
consciously if the model is re-tuned, and re-check EXPERIMENTS.md.
"""

import pytest

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
)
from repro.common.stats import geomean
from repro.harness.runner import Runner
from repro.workloads.suite import SUITE

APPS = ["hmmer", "mcf", "cactusADM", "h264ref", "libquantum", "milc"]


@pytest.fixture(scope="module")
def runner():
    return Runner(n_instrs=12_000, warmup=3_000)


@pytest.fixture(scope="module")
def profiles():
    return [SUITE[a] for a in APPS]


def _geomean_speedup(runner, profiles, cfg):
    base = make_ino_config()
    return geomean(runner.run(cfg, p).ipc / runner.run(base, p).ipc
                   for p in profiles)


class TestSpeedupBands:
    def test_casino_band(self, runner, profiles):
        value = _geomean_speedup(runner, profiles, make_casino_config())
        assert 1.35 < value < 1.75

    def test_ooo_band(self, runner, profiles):
        value = _geomean_speedup(runner, profiles, make_ooo_config())
        assert 1.6 < value < 2.1

    def test_lsc_band(self, runner, profiles):
        value = _geomean_speedup(runner, profiles, make_lsc_config())
        assert 1.15 < value < 1.5

    def test_freeway_band(self, runner, profiles):
        value = _geomean_speedup(runner, profiles, make_freeway_config())
        assert 1.2 < value < 1.55


class TestEnergyBands:
    def test_casino_energy_band(self, runner, profiles):
        base = make_ino_config()
        cas = make_casino_config()
        ratio = (sum(runner.run(cas, p).energy.total_j for p in profiles)
                 / sum(runner.run(base, p).energy.total_j for p in profiles))
        assert 1.05 < ratio < 1.45

    def test_ooo_energy_band(self, runner, profiles):
        base = make_ino_config()
        ooo = make_ooo_config()
        ratio = (sum(runner.run(ooo, p).energy.total_j for p in profiles)
                 / sum(runner.run(base, p).energy.total_j for p in profiles))
        assert 1.6 < ratio < 2.4


class TestSpecIssueBand:
    def test_spec_fraction(self, runner, profiles):
        """Paper: ~65% of dynamic instructions issue from the S-IQ; our
        synthetic suite sits around 50-55%."""
        cfg = make_casino_config()
        spec = issued = 0.0
        for p in profiles:
            stats = runner.run(cfg, p).stats
            spec += stats.get("issued_spec")
            issued += stats.get("issued")
        assert 0.40 < spec / issued < 0.70


class TestSeedRobustness:
    def test_speedup_stable_across_seeds(self, runner):
        """The CASINO speedup on one app varies modestly across generator
        seeds — the conclusions don't hinge on one lucky trace."""
        profile = SUITE["milc"]
        cas, ino = make_casino_config(), make_ino_config()
        speedups = []
        for k, res in runner.run_seeds(cas, profile, n_seeds=3).items():
            base = runner.run_seeds(ino, profile, n_seeds=3)[k]
            speedups.append(res.ipc / base.ipc)
        assert max(speedups) / min(speedups) < 1.35
        assert all(s > 1.1 for s in speedups)
