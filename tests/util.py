"""Shared helpers for core-model tests: tiny hand-crafted traces."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cores import build_core
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


def alu(dst: int, srcs: Sequence[int] = (), pc: int = 0) -> DynInst:
    return DynInst(pc=pc, op=OpClass.INT_ALU, srcs=tuple(srcs), dst=dst)


def div(dst: int, srcs: Sequence[int] = (), pc: int = 0) -> DynInst:
    """A 12-cycle operation: the portable 'long latency producer'."""
    return DynInst(pc=pc, op=OpClass.INT_DIV, srcs=tuple(srcs), dst=dst)


def load(dst: int, base: int, addr: int, pc: int = 0) -> DynInst:
    return DynInst(pc=pc, op=OpClass.LOAD, srcs=(base,), dst=dst,
                   mem_addr=addr, mem_size=8)


def store(base: int, data: int, addr: int, pc: int = 0) -> DynInst:
    return DynInst(pc=pc, op=OpClass.STORE, srcs=(base, data),
                   mem_addr=addr, mem_size=8)


def with_pcs(insts: List[DynInst], base: int = 0x1000) -> List[DynInst]:
    """Assign sequential PCs (the helpers default everything to pc=0)."""
    for i, inst in enumerate(insts):
        inst.pc = base + 4 * i
    return insts


def run_trace(cfg, insts: List[DynInst], max_cycles: int = 500_000):
    """Build the core for ``cfg``, run the trace (warm I-cache), return
    (stats, core)."""
    core = build_core(cfg)
    stats = core.run(with_pcs(insts), max_cycles=max_cycles,
                     warm_icache=True)
    return stats, core


def serial_chain(n: int, reg: int = 1) -> List[DynInst]:
    """n ALU ops, each reading the previous one's result."""
    out = [alu(reg)]
    for _ in range(n - 1):
        out.append(alu(reg, (reg,)))
    return out


def independent_ops(n: int, start_reg: int = 1, spread: int = 8) -> List[DynInst]:
    """n ALU ops with no mutual dependences (registers rotate)."""
    return [alu(start_reg + (i % spread)) for i in range(n)]
