"""Property-based tests (hypothesis): every core must preserve the
architectural contract on arbitrary workloads, and the substrates must
uphold their structural invariants."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import (
    NUM_INT_ARCH,
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.cores import build_core
from repro.cores.casino.osca import Osca
from repro.workloads.generator import SyntheticWorkload, WorkloadProfile

CORE_FACTORIES = [make_ino_config, make_ooo_config, make_casino_config,
                  make_lsc_config, make_freeway_config, make_specino_config]


@st.composite
def profiles(draw):
    """Small random-but-valid workload profiles."""
    frac_stream = draw(st.floats(0.1, 0.8))
    frac_chase = draw(st.floats(0.0, min(0.3, 0.9 - frac_stream)))
    frac_random = 1.0 - frac_stream - frac_chase
    return WorkloadProfile(
        name="hyp",
        seed=draw(st.integers(0, 2**16)),
        frac_mem=draw(st.floats(0.1, 0.55)),
        frac_store=draw(st.floats(0.1, 0.55)),
        frac_fp=draw(st.floats(0.0, 0.8)),
        n_blocks=draw(st.integers(4, 16)),
        block_len_mean=draw(st.integers(3, 12)),
        serial_frac=draw(st.floats(0.05, 0.5)),
        load_consumer_frac=draw(st.floats(0.0, 0.7)),
        stale_src_frac=draw(st.floats(0.1, 0.6)),
        footprint_kib=draw(st.sampled_from([16, 64, 512])),
        frac_stream=frac_stream,
        frac_random=frac_random,
        frac_chase=frac_chase,
        alias_frac=draw(st.floats(0.0, 0.4)),
        br_random_frac=draw(st.floats(0.0, 0.3)),
    )


_SETTINGS = settings(max_examples=12, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@given(profile=profiles(), factory=st.sampled_from(CORE_FACTORIES))
@_SETTINGS
def test_every_core_commits_the_whole_trace(profile, factory):
    """Total commit + in-order commit (asserted inside the engine) on any
    workload shape, for every core model."""
    trace = SyntheticWorkload(profile).generate(400)
    core = build_core(factory())
    stats = core.run(trace, max_cycles=400_000)
    assert stats.committed == 400
    assert core.pipeline_empty()


@given(profile=profiles())
@_SETTINGS
def test_casino_structures_drain_clean(profile):
    """After a full run: SQ/SB empty, no sentinels, OSCA at zero, no
    pending ProducerCounts, free lists within bounds."""
    trace = SyntheticWorkload(profile).generate(400)
    cfg = make_casino_config()
    core = build_core(cfg)
    core.run(trace, max_cycles=400_000)
    assert core.lsu.empty
    assert not core.lsu.sentinels
    if core.lsu.osca is not None:
        assert core.lsu.osca.total == 0
    assert not core.renamer.pending
    assert 0 <= core.renamer.free_int <= cfg.prf_int - NUM_INT_ARCH
    assert core.dbuf_used == 0


@given(profile=profiles())
@_SETTINGS
def test_casino_never_slower_than_ino_by_much(profile):
    """Speculative issue may never catastrophically lose to the baseline
    (small fixed tolerance for front-end depth differences).

    The one cost CASINO legitimately pays that InO never does is the
    full-pipeline squash on a store->load ordering violation (the paper's
    Figure 8 trade-off) — on alias-heavy profiles these can stack up on a
    short trace, so each observed violation buys a bounded squash
    allowance.  A slowdown *not* explained by violations still fails.
    """
    trace = SyntheticWorkload(profile).generate(400)
    ino = build_core(make_ino_config()).run(list(trace), max_cycles=400_000)
    cas = build_core(make_casino_config()).run(list(trace), max_cycles=400_000)
    squash_allowance = 30 * cas.get("mem_order_violations")
    assert cas.cycles <= ino.cycles * 1.25 + 100 + squash_allowance


@given(profile=profiles())
@_SETTINGS
def test_ooo_free_list_balances(profile):
    trace = SyntheticWorkload(profile).generate(400)
    cfg = make_ooo_config()
    core = build_core(cfg)
    core.run(trace, max_cycles=400_000)
    assert core.free_int == cfg.prf_int - NUM_INT_ARCH


@given(addrs=st.lists(st.tuples(st.integers(0, 4096), st.sampled_from([4, 8])),
                      min_size=1, max_size=8))
@_SETTINGS
def test_osca_inc_dec_always_returns_to_zero(addrs):
    osca = Osca(entries=64, granule=4, max_outstanding=8)
    for addr, size in addrs:
        osca.inc(addr, size)
    for addr, size in addrs:
        assert osca.outstanding(addr, size) >= 1
    for addr, size in addrs:
        osca.dec(addr, size)
    assert osca.total == 0


@given(seed=st.integers(0, 2**16), n=st.integers(50, 300))
@_SETTINGS
def test_trace_generation_deterministic(seed, n):
    profile = WorkloadProfile(name="det", seed=seed)
    a = SyntheticWorkload(profile).generate(n)
    b = SyntheticWorkload(profile).generate(n)
    assert [(d.pc, d.op, d.mem_addr, d.taken) for d in a] == \
           [(d.pc, d.op, d.mem_addr, d.taken) for d in b]


@given(profile=profiles())
@_SETTINGS
def test_runs_are_reproducible(profile):
    """The same core on the same trace gives bit-identical statistics."""
    trace = SyntheticWorkload(profile).generate(300)
    a = build_core(make_casino_config()).run(list(trace), max_cycles=400_000)
    b = build_core(make_casino_config()).run(list(trace), max_cycles=400_000)
    assert a.as_dict() == b.as_dict()
