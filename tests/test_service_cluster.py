"""Cluster fabric: coordinator, async front door, nodes, replication.

In-process topology: the coordinator state machine + asyncio front door
run in this process, worker nodes run as *threads* wrapping real
``ClusterNode`` agents (their pools still fork real worker processes).
Process-level chaos — node SIGKILL, coordinator restart — lives in
``test_service_chaos.py``; this module covers the protocol and its
semantics: round-trip correctness vs serial, cross-sweep dedup,
in-flight coalescing, pull-through replication, long-polling, the
429/503 contract, keep-alive connection reuse, and the node lifecycle
state machine (alive -> suspect -> dead -> lease reclaim).
"""

import dataclasses
import threading
import time

import pytest

from repro.common.params import make_casino_config, make_ino_config
from repro.service.chaos import serial_digests
from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceDrainingError,
)
from repro.service.cluster import (
    ClusterFrontDoor,
    ClusterNode,
    ClusterService,
    ReplicaStore,
)
from repro.service.cluster.frontdoor import create_coordinator
from repro.service.jobs import JobSpec
from repro.service.store import ResultStore, encode_record
from repro.workloads.suite import SUITE

N, WARMUP = 1200, 200
TERMINAL = ("done", "failed", "dead_letter")


def _job(core="ino", app="hmmer", n=N, **kw):
    body = {"core": core, "app": app, "n": n, "warmup": WARMUP}
    body.update(kw)
    return body


def _spec(core="ino", app="hmmer", n=N, **kw):
    factories = {"ino": make_ino_config, "casino": make_casino_config}
    return JobSpec.make(factories[core](), SUITE[app],
                        n_instrs=n, warmup=WARMUP, **kw)


def _wait_for(predicate, timeout_s=120.0, poll_s=0.02):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never held"
        time.sleep(poll_s)


class _ThreadNode:
    """One ClusterNode agent pumped by a daemon thread."""

    def __init__(self, url, store_dir, node_id):
        self.node = ClusterNode(url, store_dir, node_id=node_id,
                                workers=1, heartbeat_s=0.2,
                                lease_wait_s=0.2)
        self.node.pool.start()
        self.thread = threading.Thread(target=self.node.run, daemon=True)
        self.thread.start()

    def stop(self):
        self.node.stop()
        self.thread.join(timeout=15)
        self.node.close()


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """Coordinator + front door + two single-worker nodes + client."""
    root = tmp_path_factory.mktemp("cluster")
    door, service = create_coordinator(
        store_dir=str(root / "coord"), max_queue=32,
        journal_sync="always", suspect_after_s=2.0, dead_after_s=60.0)
    service.start()
    door.start()
    nodes = [_ThreadNode(door.url, str(root / f"n{i}"), f"tnode-{i}")
             for i in (1, 2)]
    client = ServiceClient(door.url, timeout=30)
    _wait_for(lambda: sum(1 for e in service.roster()
                          if e["state"] == "alive") == 2, timeout_s=30)
    yield client, service, door
    for tn in nodes:
        tn.stop()
    door.stop()
    service.stop()


class TestRoundTrip:
    def test_healthz_includes_roster_with_heartbeat_ages(self, cluster):
        client, service, _ = cluster
        health = client.health()
        assert health["role"] == "coordinator"
        assert health["workers"] == 2
        states = {n["node"]: n for n in health["nodes"]}
        assert set(states) == {"tnode-1", "tnode-2"}
        for entry in states.values():
            assert entry["state"] == "alive"
            assert entry["last_heartbeat_age_s"] < 5.0

    def test_submit_runs_on_nodes_digest_matches_serial(self, cluster):
        client, service, _ = cluster
        expected = serial_digests([_spec("ino", "hmmer"),
                                   _spec("casino", "hmmer")])
        entries = client.submit([_job("ino", "hmmer"),
                                 _job("casino", "hmmer")])
        done = client.wait([e["id"] for e in entries], timeout_s=120,
                           long_poll_s=5.0)
        assert all(e["status"] == "done" for e in done.values())
        for entry in done.values():
            record = client.result(entry["key"])["record"]
            assert record["manifest"]["counter_digest"] == \
                expected[entry["key"]]

    def test_trace_spans_cross_the_wire(self, cluster):
        client, service, _ = cluster
        (entry, ) = client.submit(_job("ino", "mcf"))
        client.wait([entry["id"]], timeout_s=120, long_poll_s=5.0)
        trace = client.trace(entry["id"])
        events = [e["ev"] for e in trace["events"]]
        assert trace["complete"]
        for ev in ("submitted", "journaled", "leased", "started",
                   "simulated", "stored", "completed"):
            assert ev in events, f"missing span event {ev}: {events}"
        node_stamped = [e for e in trace["events"]
                        if e["ev"] in ("started", "simulated")]
        assert node_stamped and all(
            e.get("node", "").startswith("tnode-") for e in node_stamped)

    def test_metrics_merge_node_snapshots(self, cluster):
        client, service, _ = cluster
        _wait_for(lambda: any(n.get("telemetry")
                              for n in service._nodes.values()),
                  timeout_s=30)
        text = client.metrics()
        assert "repro_node_jobs_leased_total" in text
        assert "repro_jobs_terminal_total" in text
        assert "repro_cluster_nodes" in text


class TestCrossSweepDedup:
    def test_resubmit_is_store_served(self, cluster):
        client, service, _ = cluster
        (first, ) = client.submit(_job("ino", "hmmer", n=N + 8))
        client.wait([first["id"]], timeout_s=120, long_poll_s=5.0)
        cached_before = service.counters["cached"]
        (again, ) = client.submit(_job("ino", "hmmer", n=N + 8))
        assert again["status"] == "done"
        assert again.get("cached") is True
        assert service.counters["cached"] == cached_before + 1

    def test_overlapping_sweeps_from_two_clients_share_entries(
            self, cluster):
        client, service, door = cluster
        other = ServiceClient(door.url, timeout=30)
        try:
            (a, ) = client.submit(_job("casino", "mcf", n=N + 16))
            client.wait([a["id"]], timeout_s=120, long_poll_s=5.0)
            (b, ) = other.submit(_job("casino", "mcf", n=N + 16))
            assert b["status"] == "done" and b.get("cached") is True
            assert b["key"] == client.job(a["id"])["key"]
        finally:
            other.close()

    def test_racing_duplicate_coalesces_in_flight(self, cluster):
        client, service, _ = cluster
        # The stall keeps the primary leased long enough for the
        # duplicate to race it (stall hooks are not part of the key).
        pair = [_job("ino", "mcf", n=N + 24, test_stall_s=1.0),
                _job("ino", "mcf", n=N + 24)]
        entries = client.submit({"jobs": pair})
        statuses = {e["id"]: e for e in entries}
        assert len(statuses) == 2
        coalesced = [e for e in entries if e.get("coalesced")]
        assert len(coalesced) == 1, entries
        done = client.wait([e["id"] for e in entries], timeout_s=120,
                           long_poll_s=5.0)
        assert all(e["status"] == "done" for e in done.values())
        assert service.counters["coalesced"] >= 1
        trace = client.trace(coalesced[0]["id"])
        assert "coalesced" in [e["ev"] for e in trace["events"]]


class TestLongPoll:
    def test_wait_param_parks_until_terminal(self, cluster):
        client, service, _ = cluster
        (entry, ) = client.submit(_job("casino", "hmmer", n=N + 32,
                                       test_stall_s=0.8))
        t0 = time.monotonic()
        final = client.job(entry["id"], wait_s=30.0)
        elapsed = time.monotonic() - t0
        assert final["status"] in TERMINAL
        assert elapsed < 30.0  # returned on completion, not the cap

    def test_wait_expires_on_nonterminal_job(self, cluster):
        client, service, _ = cluster
        (entry, ) = client.submit(_job("ino", "hmmer", n=N + 40,
                                       test_stall_s=1.5))
        got = client.job(entry["id"], wait_s=0.1)
        assert got["id"] == entry["id"]  # answered, terminal or not
        client.wait([entry["id"]], timeout_s=120, long_poll_s=5.0)


class TestKeepAlive:
    def test_batch_of_requests_reuses_one_connection(self, cluster):
        """Satellite micro-benchmark: N requests != N sockets."""
        client, service, door = cluster
        probe = ServiceClient(door.url, timeout=30)
        try:
            probe.health()
            opened_after_first = probe.connections_opened
            entries = probe.submit([_job("ino", "hmmer", n=N + 48 + i)
                                    for i in range(8)])
            probe.wait([e["id"] for e in entries], timeout_s=120,
                       long_poll_s=2.0)
            for _ in range(5):
                probe.stats()
            assert opened_after_first == 1
            assert probe.connections_opened == 1, \
                f"opened {probe.connections_opened} sockets for ~20+ requests"
        finally:
            probe.close()

    def test_stale_connection_retries_transparently(self, cluster):
        client, service, door = cluster
        probe = ServiceClient(door.url, timeout=30)
        try:
            probe.health()
            # Kill the pooled socket behind the client's back; the next
            # request must succeed on a fresh connection.
            probe._conn.sock.close()
            assert probe.health()["status"] in ("ok", "draining")
            assert probe.connections_opened == 2
        finally:
            probe.close()


class TestBackpressure:
    def test_queue_full_gives_429_and_drain_gives_503(self, tmp_path):
        door, service = create_coordinator(
            store_dir=str(tmp_path / "bp"), max_queue=2,
            journal_sync="none")
        service.start()
        door.start()
        client = ServiceClient(door.url, timeout=10)
        try:
            # No nodes lease, so submissions pile into the bounded queue.
            client.submit([_job(n=N + 100), _job(n=N + 101)])
            with pytest.raises(ServiceBusyError) as exc:
                client.submit(_job(n=N + 102))
            assert exc.value.retry_after_s > 0
            service.begin_drain()
            with pytest.raises(ServiceDrainingError):
                client.submit(_job(n=N + 103))
            assert client.health()["status"] == "draining"
        finally:
            client.close()
            door.stop()
            service.stop()


class TestNodeLifecycle:
    def test_silent_node_goes_suspect_then_dead_then_reclaim(
            self, tmp_path):
        """Drive the roster state machine deterministically: a fake node
        leases a job, falls silent, and the tick escalates it
        alive -> suspect (visible, nothing reclaimed) -> dead (lease
        requeued for the survivors)."""
        store = ResultStore(tmp_path / "store")
        service = ClusterService(store, suspect_after_s=1.0,
                                 dead_after_s=2.0)
        service.register_node("ghost", capacity=1)
        service.register_node("survivor", capacity=1)
        service.submit(_spec("ino", "hmmer"))
        leases = service.try_lease("ghost", max_jobs=1)
        assert len(leases) == 1
        job_id = leases[0]["id"]
        # Rewind the ghost's heartbeat instead of advancing the clock,
        # so the survivor's liveness is untouched by the same tick.
        service._nodes["ghost"]["last_hb"] -= 1.5  # past suspect
        service.tick()
        roster = {e["node"]: e for e in service.roster()}
        assert roster["ghost"]["state"] == "suspect"
        assert service.job(job_id)["status"] == "running"  # not reclaimed
        service._nodes["ghost"]["last_hb"] -= 1.0  # past dead
        service.tick()
        roster = {e["node"]: e for e in service.roster()}
        assert roster["ghost"]["state"] == "dead"
        assert roster["survivor"]["state"] == "alive"
        assert service.job(job_id)["status"] == "queued"  # redelivery
        assert service.counters["redeliveries"] == 1
        release = service.try_lease("survivor", max_jobs=1)
        assert [j["id"] for j in release] == [job_id]
        assert release[0]["attempt"] == 2
        from repro.service.cluster.coordinator import UnknownNodeError
        with pytest.raises(UnknownNodeError):
            service.heartbeat("ghost")  # dead nodes must re-register

    def test_redelivery_budget_dead_letters_poison_leases(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        service = ClusterService(store, suspect_after_s=0.5,
                                 dead_after_s=1.0, max_redeliveries=1)
        service.submit(_spec("casino", "hmmer"))
        job_id = None
        base = time.monotonic()
        for round_no in range(3):
            node = f"doomed-{round_no}"
            service.register_node(node, capacity=1)
            leases = service.try_lease(node, max_jobs=1)
            if not leases:
                break
            job_id = leases[0]["id"]
            base += 2.0
            service.tick(now=base)  # node dies silently every round
        entry = service.job(job_id)
        assert entry["status"] == "dead_letter"
        assert "deliver" in entry["error"]
        assert service.counters["dead_lettered"] == 1

    def test_duplicate_completion_is_idempotent_noop(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        service = ClusterService(store, suspect_after_s=30.0,
                                 dead_after_s=60.0)
        service.register_node("a", capacity=1)
        service.register_node("b", capacity=1)
        spec = _spec("ino", "mcf")
        from repro.service.jobs import execute_job
        record = execute_job(spec)
        entry = service.submit(spec)
        (lease, ) = service.try_lease("a", max_jobs=1)
        first = service.complete("a", lease["id"], record)
        second = service.complete("b", lease["id"], record)
        assert first["accepted"] is True
        assert second == {"accepted": False, "duplicate": True}
        assert service.counters["completed"] == 1
        assert service.counters["duplicate_completions"] == 1
        assert service.job(entry["id"])["status"] == "done"


class TestReplicaStore:
    def _record(self):
        return {"core": "x", "app": "y", "ipc": 1.0,
                "manifest": {"counter_digest": "d" * 8}}

    def test_fetch_on_miss_verifies_and_caches_byte_identically(
            self, tmp_path):
        import json
        authority = ResultStore(tmp_path / "authority")
        record = self._record()
        key = "ab" * 16
        authority.put(key, record)
        fetches = []

        def fetch(k):
            fetches.append(k)
            raw = authority.get_bytes(k)
            return json.loads(raw) if raw is not None else None

        replica = ReplicaStore(ResultStore(tmp_path / "replica"), fetch)
        assert replica.get(key) == record          # miss -> fetch
        assert replica.get(key) == record          # now local
        assert fetches == [key]
        assert replica.stats == {"local_hits": 1, "fetched": 1,
                                 "fetch_misses": 0, "verify_failures": 0}
        # Replication is byte-identical: same canonical envelope bytes.
        assert replica.local.get_bytes(key) == authority.get_bytes(key)

    def test_corrupt_wire_envelope_is_rejected_not_cached(self, tmp_path):
        import json
        record = self._record()
        key = "cd" * 16
        envelope = json.loads(encode_record(key, record))
        envelope["record"]["ipc"] = 999.0  # payload no longer matches digest

        replica = ReplicaStore(ResultStore(tmp_path / "replica"),
                               lambda k: envelope)
        assert replica.get(key) is None
        assert replica.stats["verify_failures"] == 1
        assert key not in replica.local

    def test_fetch_miss_counts_and_returns_none(self, tmp_path):
        replica = ReplicaStore(ResultStore(tmp_path / "replica"),
                               lambda k: None)
        assert replica.get("ef" * 16) is None
        assert replica.stats["fetch_misses"] == 1


class TestTraceReplication:
    """Published input traces ride the result namespace: coordinator
    ``publish_trace`` -> ``GET /results/<key>`` -> ``verify_envelope``
    -> codec self-verification -> node-local binary cache."""

    def _trace(self, app, n):
        from repro.workloads.generator import SyntheticWorkload
        return SyntheticWorkload(SUITE[app]).generate(n)

    def test_publish_then_fetch_through_live_door(self, cluster,
                                                  tmp_path):
        from repro.engine.soatrace import encode_trace
        from repro.service.store import TraceStore, trace_key
        client, service, door = cluster
        profile = SUITE["mcf"]
        trace = self._trace("mcf", 900)
        key = service.publish_trace(profile, 900, trace)
        assert key == trace_key(profile, 900)
        local = TraceStore(tmp_path / "traces",
                           fetch=lambda k: client.result(k))
        served = local.get(profile, 900)
        assert served is not None
        assert local.stats["fetched"] == 1
        # Bit-identical replication: re-encoding the served stream
        # reproduces the published container exactly.
        assert encode_trace(served, key) == encode_trace(trace, key)
        assert local.get(profile, 900) is not None  # now local
        assert local.stats["fetched"] == 1

    def test_node_prefetches_published_trace(self, cluster, tmp_path):
        from repro.service.store import trace_key
        client, service, door = cluster
        profile = SUITE["hmmer"]
        service.publish_trace(profile, 1000, self._trace("hmmer", 1000))
        node = ClusterNode(door.url, str(tmp_path / "nstore"),
                           node_id="tnode-prefetch", workers=1)
        try:
            spec = _spec(core="ino", app="hmmer", n=1000)
            node._prefetch_trace(spec)
            assert node.stats["traces_prefetched"] == 1
            # The verified container landed on the shard the pool
            # workers read, so no worker pays generation for this job.
            assert node.traces._path(trace_key(profile, 1000)).exists()
            node._prefetch_trace(spec)  # idempotent: local, no refetch
            assert node.stats["traces_prefetched"] == 1
        finally:
            node.close()

    def test_wrong_key_payload_rejected_legacy_pickle_served(
            self, tmp_path):
        import json
        import pickle
        from repro.service.store import (TRACE_SCHEMA, TraceStore,
                                         trace_key, trace_wire_record)
        profile = SUITE["mcf"]
        trace = self._trace("mcf", 700)
        key = trace_key(profile, 700)
        # A consistent envelope whose payload was encoded for another
        # key: verify_envelope passes, the codec's key check must not.
        alien = trace_wire_record("ab" * 32, trace)
        envelope = json.loads(encode_record(key, alien))
        store = TraceStore(tmp_path / "traces", fetch=lambda k: envelope)
        assert store.get(profile, 700) is None
        assert not store._path(key).exists()
        assert store.stats["fetched"] == 0
        # Legacy pickled envelopes written by older workers still serve.
        legacy = store._legacy_path(key)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_bytes(pickle.dumps(
            {"schema": TRACE_SCHEMA, "key": key, "trace": trace}))
        served = store.get(profile, 700)
        assert served is not None and len(served) == len(trace)
        assert store.stats["hits"] == 1
