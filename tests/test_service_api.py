"""HTTP service: submit/poll/result lifecycle, validation, backpressure."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.service.client import (
    ServiceBusyError,
    ServiceClient,
    ServiceDrainingError,
    ServiceError,
)
from repro.service.server import create_server

N, WARMUP = 1200, 200


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("service-store")
    httpd, svc = create_server(host="127.0.0.1", port=0, workers=1,
                               store_dir=str(store_dir), max_queue=16)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    host, port = httpd.server_address
    client = ServiceClient(f"http://{host}:{port}", timeout=30)
    yield client
    svc.stop()
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def _job(core="ino", app="hmmer", **kw):
    body = {"core": core, "app": app, "n": N, "warmup": WARMUP}
    body.update(kw)
    return body


class TestLifecycle:
    def test_healthz(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] >= 0

    def test_submit_wait_result(self, service):
        (entry, ) = service.submit(_job())
        assert entry["status"] in ("queued", "running", "done")
        assert entry["id"].startswith("job-")
        done = service.wait([entry["id"]], poll_s=0.1, timeout_s=120)
        final = done[entry["id"]]
        assert final["status"] == "done"
        assert final["result_url"] == f"/results/{final['key']}"
        envelope = service.result(final["key"])
        assert envelope["key"] == final["key"]
        record = envelope["record"]
        assert record["core"] == "ino" and record["app"] == "hmmer"
        assert record["ipc"] > 0
        assert "counter_digest" in record["manifest"]

    def test_resubmit_served_from_cache(self, service):
        """Same spec again: completes at submission time, marked cached,
        and the store hit counter moves."""
        before = service.stats()["store"]["hits"]
        (entry, ) = service.submit(_job())
        assert entry["status"] == "done"
        assert entry.get("cached") is True
        assert service.stats()["store"]["hits"] > before

    def test_batch_submission(self, service):
        entries = service.submit([_job(app="mcf"), _job(core="casino",
                                                        app="mcf")])
        assert len(entries) == 2
        done = service.wait([e["id"] for e in entries], poll_s=0.1,
                            timeout_s=180)
        assert all(e["status"] == "done" for e in done.values())

    def test_stats_shape(self, service):
        stats = service.stats()
        assert stats["schema"] == 2
        for section in ("store", "pool", "queue", "jobs", "telemetry"):
            assert section in stats
        assert stats["queue"]["max"] == 16
        for counter in ("hits", "misses", "writes", "evictions",
                        "quarantined", "entries"):
            assert counter in stats["store"]
        # pool state is namespaced: counters / trace / workers / leases
        pool = stats["pool"]
        for key in ("counters", "trace", "workers", "degraded",
                    "pending", "leases"):
            assert key in pool
        assert "evictions" in pool["trace"]
        assert stats["telemetry"]["enabled"] is True
        assert stats["telemetry"]["spans"] >= 1

    def test_metrics_endpoint(self, service):
        text = service.metrics()
        assert text.startswith("# HELP")
        assert "repro_jobs_submitted_total" in text
        assert "repro_queue_depth" in text

    def test_job_trace_endpoint(self, service):
        (entry, ) = service.submit(_job())   # cache-served by now
        span = service.trace(entry["id"])
        assert span["complete"] is True
        assert span["trace"]
        events = [e["ev"] for e in span["events"]]
        assert events[0] == "submitted"
        assert events[-1] == "completed"

    def test_job_trace_unknown_job(self, service):
        with pytest.raises(ServiceError) as exc:
            service.trace("job-nope")
        assert exc.value.status == 404


class TestValidation:
    def test_unknown_core(self, service):
        with pytest.raises(ServiceError) as exc:
            service.submit(_job(core="pentium4"))
        assert exc.value.status == 400
        assert "unknown core" in str(exc.value)

    def test_unknown_app(self, service):
        with pytest.raises(ServiceError) as exc:
            service.submit(_job(app="doom"))
        assert exc.value.status == 400

    def test_missing_app(self, service):
        with pytest.raises(ServiceError) as exc:
            service.submit({"core": "ino"})
        assert exc.value.status == 400

    def test_invalid_json(self, service):
        req = urllib.request.Request(
            service.base_url + "/jobs", data=b"{ nope",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_unknown_job_and_result_404(self, service):
        with pytest.raises(ServiceError) as exc:
            service.job("job-999999")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            service.result("ff" * 16)
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            service._request("/no/such/endpoint")
        assert exc.value.status == 404


class TestDrainScrubListing:
    @pytest.fixture()
    def own_service(self, tmp_path):
        """A private server: these tests mutate service-wide state
        (drain, scrub) that must not leak into the shared fixture."""
        httpd, svc = create_server(host="127.0.0.1", port=0, workers=1,
                                   store_dir=str(tmp_path / "store"),
                                   max_queue=16)
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        host, port = httpd.server_address
        client = ServiceClient(f"http://{host}:{port}", timeout=30)
        yield client, svc
        svc.stop()
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    def test_drain_refuses_submissions_with_503(self, own_service):
        client, svc = own_service
        svc.begin_drain()
        assert client.health()["status"] == "draining"
        with pytest.raises(ServiceDrainingError) as exc:
            client.submit(_job())
        assert exc.value.status == 503
        assert exc.value.retry_after_s > 0
        req = urllib.request.Request(
            client.base_url + "/jobs", data=b'{"core":"ino","app":"mcf"}',
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as http_exc:
            urllib.request.urlopen(req, timeout=10)
        assert http_exc.value.code == 503
        assert http_exc.value.headers.get("Retry-After") is not None

    def test_jobs_listing_with_status_filter(self, own_service):
        client, _ = own_service
        (entry, ) = client.submit(_job())
        client.wait([entry["id"]], poll_s=0.1, timeout_s=120)
        listed = client.jobs()
        assert any(job["id"] == entry["id"] for job in listed)
        done = client.jobs(status="done")
        assert all(job["status"] == "done" for job in done)
        assert any(job["id"] == entry["id"] for job in done)
        assert client.jobs(status="failed") == []

    def test_scrub_endpoint_reports_and_lands_in_stats(self, own_service):
        client, _ = own_service
        (entry, ) = client.submit(_job())
        client.wait([entry["id"]], poll_s=0.1, timeout_s=120)
        report = client.scrub()
        assert report["results"]["checked"] >= 1
        assert report["results"]["quarantined"] == []
        assert report["quarantine_backlog"] == 0
        assert "scrub" in client.stats()


class TestBackpressure:
    def test_queue_full_yields_429_with_retry_hint(self, tmp_path):
        """A queue of 1 behind slow jobs must answer 429, not buffer."""
        httpd, svc = create_server(host="127.0.0.1", port=0, workers=1,
                                   store_dir=str(tmp_path / "store"),
                                   max_queue=1)
        thread = threading.Thread(target=httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        host, port = httpd.server_address
        client = ServiceClient(f"http://{host}:{port}", timeout=30)
        apps = ["hmmer", "mcf", "milc", "gcc", "bwaves", "gobmk",
                "sjeng", "astar"]
        try:
            busy = None
            for app in apps:  # distinct apps: none is cache-served
                try:
                    client.submit(_job(app=app, n=60_000, warmup=2000))
                except ServiceBusyError as exc:
                    busy = exc
                    break
            assert busy is not None, "queue never filled"
            assert busy.status == 429
            assert busy.retry_after_s > 0
            assert "queue full" in str(busy)
        finally:
            svc.stop()
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
