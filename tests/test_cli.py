"""CLI smoke tests (python -m repro)."""

import json

import pytest

from repro.__main__ import main
from repro.obs.events import EVENT_KINDS
from repro.obs.perfetto import validate_trace


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "GemsFDTD" in out

    def test_run(self, capsys):
        assert main(["run", "--core", "ino", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_compare(self, capsys):
        assert main(["compare", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "casino" in out and "speedup" in out
        # S2 + CPI-stack wiring: stall counters and the cycle stack ride
        # along in the comparison table.
        assert "CPI stack" in out and "iq_head_blocked" in out
        assert "sampled stall counters" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "--app", "h264ref", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "frac_loads" in out and "alias_pairs" in out

    def test_bad_core_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--core", "pentium4"])

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStructuredErrors:
    """S2: failed simulations exit non-zero with SimulationError.details
    rendered to stderr — never a raw traceback."""

    def test_run_deadlock_exits_3_with_details(self, capsys, tmp_path):
        cfg = tmp_path / "tight.json"
        cfg.write_text(json.dumps({"base": "casino", "deadlock_cycles": 2}))
        assert main(["run", "--config", str(cfg), "--app", "mcf",
                     "-n", "2000", "--warmup", "500"]) == 3
        err = capsys.readouterr().err
        assert "simulation failed" in err
        assert "check: deadlock_watchdog" in err
        assert "cycle:" in err
        assert "Traceback" not in err

    def test_compare_simulation_error_exits_3(self, capsys, monkeypatch):
        from repro.engine.core_base import SimulationError
        from repro.harness.runner import Runner

        def boom(self, cfg, profile):
            raise SimulationError("injected failure", core=cfg.name,
                                  check="cycle_budget", cycle=123)

        monkeypatch.setattr(Runner, "run", boom)
        assert main(["compare", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500"]) == 3
        err = capsys.readouterr().err
        assert "injected failure" in err
        assert "check: cycle_budget" in err


class TestSubmitCommand:
    def test_bad_batch_entry_exits_2(self, capsys):
        assert main(["submit", "--batch", "ino:hmmer,garbage"]) == 2
        err = capsys.readouterr().err
        assert "bad --batch entry" in err and "garbage" in err

    def test_unreachable_service_exits_4(self, capsys):
        # Port 9 (discard) is never a simulation service.
        assert main(["submit", "--url", "http://127.0.0.1:9",
                     "--core", "ino", "--app", "hmmer"]) == 4
        assert "error:" in capsys.readouterr().err


class TestJsonExport:
    def test_run_json(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        assert main(["run", "--core", "ino", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500",
                     "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["core"] == "ino" and doc["app"] == "hmmer"
        assert doc["ipc"] > 0
        assert "committed" in doc["counters"]
        assert doc["manifest"]["config_hash"]

    def test_compare_json(self, capsys, tmp_path):
        out_path = tmp_path / "cmp.json"
        assert main(["compare", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500",
                     "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["baseline"] == "ino"
        assert {"ino", "ooo", "casino"} <= set(doc["cores"])
        assert doc["cores"]["casino"]["speedup"] > 0


class TestTraceCommand:
    def test_trace_smoke(self, capsys):
        assert main(["trace", "--core", "casino", "--app", "mcf",
                     "-n", "2000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "dispatch" in out and "commit" in out

    def test_trace_exports(self, capsys, tmp_path):
        perfetto = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["trace", "--core", "ooo", "--app", "milc",
                     "-n", "2000", "--warmup", "500",
                     "--perfetto", str(perfetto),
                     "--metrics", str(metrics)]) == 0
        doc = json.loads(perfetto.read_text())
        assert validate_trace(doc) == []
        assert doc["traceEvents"]
        report = json.loads(metrics.read_text())
        assert report["samples"]

    def test_trace_profile(self, capsys):
        assert main(["trace", "--core", "ino", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "self-profile" in out and "components cover" in out

    def test_trace_kind_filter(self, capsys):
        assert main(["trace", "--core", "ino", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500",
                     "--kinds", "commit"]) == 0
        out = capsys.readouterr().out
        assert "commit" in out and "dispatch" not in out

    def test_trace_unknown_kind_rejected(self, capsys):
        # S1: a typo'd kind is a friendly error listing the valid kinds,
        # not a traceback.
        assert main(["trace", "--core", "ino", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500",
                     "--kinds", "commit,frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "frobnicate" in err
        for kind in EVENT_KINDS:
            assert kind in err


class TestExplainCommand:
    def test_explain_smoke(self, capsys):
        assert main(["explain", "mcf", "--core", "casino",
                     "-n", "2000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "CPI stack" in out
        assert "critical path" in out and "edge type" in out
        assert "slack" in out

    def test_explain_vs_diffs_schedules(self, capsys):
        assert main(["explain", "mcf", "--core", "casino", "--vs", "ooo",
                     "-n", "2000", "--warmup", "500", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "schedule diff: casino vs ooo" in out
        assert "fell behind" in out and "caught up" in out
        assert "pc=0x" in out

    def test_explain_vs_self_rejected(self, capsys):
        assert main(["explain", "mcf", "--core", "ooo", "--vs", "ooo",
                     "-n", "2000", "--warmup", "500"]) == 2
        assert "differ" in capsys.readouterr().err

    def test_explain_exports(self, capsys, tmp_path):
        out_json = tmp_path / "explain.json"
        out_csv = tmp_path / "explain.csv"
        assert main(["explain", "hmmer", "--core", "ino", "--vs", "ooo",
                     "-n", "2000", "--warmup", "500",
                     "--json", str(out_json), "--csv", str(out_csv)]) == 0
        doc = json.loads(out_json.read_text())
        assert set(doc["cores"]) == {"ino", "ooo"}
        for core in doc["cores"].values():
            stack = core["accounting"]["components"]
            assert sum(stack.values()) == core["accounting"]["total_cycles"]
            cp = core["critical_path"]
            assert sum(cp["breakdown"].values()) == cp["length"]
        assert doc["diff"]["instructions"] > 0
        lines = out_csv.read_text().splitlines()
        assert lines[0].startswith("core,component")
        # one row per (core, component)
        assert len(lines) == 1 + 2 * 7
