"""CLI smoke tests (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "GemsFDTD" in out

    def test_run(self, capsys):
        assert main(["run", "--core", "ino", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_compare(self, capsys):
        assert main(["compare", "--app", "hmmer",
                     "-n", "2000", "--warmup", "500"]) == 0
        out = capsys.readouterr().out
        assert "casino" in out and "speedup" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "--app", "h264ref", "-n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "frac_loads" in out and "alias_pairs" in out

    def test_bad_core_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--core", "pentium4"])

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
