"""Assembler: parsing, label resolution, error reporting."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.opcodes import OpClass
from repro.isa.registers import parse_reg


class TestBasicParsing:
    def test_three_operand_alu(self):
        prog = assemble("add r1, r2, r3")
        inst = prog.insts[0]
        assert inst.op is OpClass.INT_ALU
        assert inst.dst == 1
        assert inst.srcs == (2, 3)

    def test_immediate_forms(self):
        prog = assemble("addi r1, r2, 42\nli r3, 0x10")
        assert prog.insts[0].imm == 42
        assert prog.insts[1].imm == 16

    def test_memory_operand(self):
        prog = assemble("ld r1, 8(r2)\nst r3, -16(r4)")
        ld, st = prog.insts
        assert ld.op is OpClass.LOAD and ld.dst == 1 and ld.srcs == (2,)
        assert ld.imm == 8
        assert st.op is OpClass.STORE and st.srcs == (4, 3) and st.imm == -16

    def test_fp_ops(self):
        prog = assemble("fadd f1, f2, f3\nfld f0, 0(r1)")
        assert prog.insts[0].op is OpClass.FP_ADD
        assert prog.insts[0].dst == parse_reg("f1")
        assert prog.insts[1].op is OpClass.LOAD_FP

    def test_mul_div_classes(self):
        prog = assemble("mul r1, r2, r3\ndiv r4, r5, r6")
        assert prog.insts[0].op is OpClass.INT_MUL
        assert prog.insts[1].op is OpClass.INT_DIV

    def test_comments_and_blank_lines(self):
        prog = assemble("""
            ; a comment
            add r1, r1, r2   # trailing comment

            halt
        """)
        assert len(prog) == 2


class TestLabels:
    def test_branch_to_label(self):
        prog = assemble("""
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """)
        assert prog.insts[1].imm == prog.labels["loop"]
        assert prog.labels["loop"] == prog.base_pc

    def test_forward_label(self):
        prog = assemble("""
            jmp end
            nop
        end:
            halt
        """)
        assert prog.insts[0].imm == prog.labels["end"]

    def test_label_on_same_line(self):
        prog = assemble("start: nop\n jmp start")
        assert prog.labels["start"] == prog.base_pc

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\na:\nnop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("jmp nowhere")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r99")

    def test_fp_register_range(self):
        with pytest.raises(AssemblerError):
            assemble("fadd f1, f2, f9")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("ld r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1")


class TestProgram:
    def test_pcs_advance_by_4(self):
        prog = assemble("nop\nnop\nnop")
        assert [i.pc for i in prog.insts] == [0x1000, 0x1004, 0x1008]

    def test_at_pc(self):
        prog = assemble("nop\nhalt")
        assert prog.at_pc(0x1004).op is OpClass.HALT
        with pytest.raises(IndexError):
            prog.at_pc(0x2000)
