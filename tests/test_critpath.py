"""Critical-path analysis and schedule diffing (repro.obs.critpath,
repro.obs.schedulediff).

The structural contract: the backward walk sweeps time continuously, so
the per-edge-type breakdown sums *exactly* to the path length on any
schedule, and the diff names specific instructions (seq, opcode, pc)
rather than aggregate counters.
"""

import pytest

from repro.common.params import (
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.cores import build_core
from repro.obs.critpath import EDGE_TYPES, build_graph, critical_path, \
    edge_slack
from repro.obs.schedulediff import diff_schedules, format_diff_report
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import kernel_trace
from repro.workloads.suite import SUITE
from tests.util import div, load, serial_chain, store, with_pcs


def _schedule(make_cfg, trace, **kwargs):
    core = build_core(make_cfg())
    core.run(trace, record_schedule=True, warm_icache=True, **kwargs)
    return core.schedule


def _app_trace(app, n=2_000):
    return SyntheticWorkload(SUITE[app]).generate(n)


class TestCriticalPath:
    @pytest.mark.parametrize("make_cfg", [make_ino_config,
                                          make_casino_config,
                                          make_ooo_config],
                             ids=["ino", "casino", "ooo"])
    @pytest.mark.parametrize("source", ["mcf", "pointer_chase"])
    def test_breakdown_sums_to_length(self, make_cfg, source):
        if source == "pointer_chase":
            trace = kernel_trace("pointer_chase", nodes=64, hops=512)
        else:
            trace = _app_trace(source)
        cp = critical_path(_schedule(make_cfg, trace))
        assert set(cp["breakdown"]) == set(EDGE_TYPES)
        assert sum(cp["breakdown"].values()) == cp["length"] > 0
        assert cp["path"], "path must name instructions"

    def test_path_names_instructions(self):
        cp = critical_path(_schedule(make_ino_config, _app_trace("mcf")))
        step = cp["path"][-1]
        assert step["label"].startswith("#")
        assert "pc=0x" in step["label"]
        assert step["via"] in EDGE_TYPES + ("data",)

    def test_serial_chain_is_all_execute_and_data(self):
        """A pure dependence chain: the path is the chain itself and no
        cycles are attributed to memory."""
        cp = critical_path(_schedule(make_ino_config,
                                     with_pcs(serial_chain(64))))
        assert cp["breakdown"]["memory"] == 0
        assert cp["breakdown"]["execute"] >= 64

    def test_long_latency_chain_dominated_by_execute(self):
        chain = [div(1)] + [div(1, (1,)) for _ in range(15)]
        cp = critical_path(_schedule(make_ino_config, with_pcs(chain)))
        # 16 dependent 12-cycle divides: execute dominates the length.
        assert cp["breakdown"]["execute"] >= 16 * 12
        assert cp["breakdown"]["execute"] >= 0.8 * cp["length"]

    def test_store_load_memory_edge(self):
        """A load forwarding from an older store must bind through the
        memory edge, not appear spuriously independent."""
        insts = with_pcs([div(1), store(0, 1, 0x100), load(2, 0, 0x100),
                          div(3, (2,))])
        nodes = build_graph(_schedule(make_ino_config, insts))
        by_seq = {n.seq: n for n in nodes}
        assert by_seq[2].mem_producer is by_seq[1]

    def test_empty_schedule(self):
        cp = critical_path([])
        assert cp["length"] == 0 and cp["path"] == []


class TestEdgeSlack:
    def test_inorder_pays_more_ordering_than_ooo(self):
        trace = _app_trace("mcf")
        ino = edge_slack(_schedule(make_ino_config, trace))
        ooo = edge_slack(_schedule(make_ooo_config, trace))
        assert ino["siq_order"] > ooo["siq_order"]

    def test_totals_are_nonnegative(self):
        slack = edge_slack(_schedule(make_casino_config, _app_trace("mcf")))
        assert all(v >= 0 for v in slack.values())


class TestScheduleDiff:
    def test_diff_against_self_is_zero(self):
        sched = _schedule(make_casino_config, _app_trace("hmmer"))
        diff = diff_schedules(sched, sched, name_a="x", name_b="y")
        assert diff["total_delta"] == 0
        assert diff["fell_behind"] == [] and diff["caught_up"] == []

    def test_casino_vs_ooo_names_instructions(self):
        trace = _app_trace("mcf")
        diff = diff_schedules(_schedule(make_casino_config, trace),
                              _schedule(make_ooo_config, trace),
                              name_a="casino", name_b="ooo")
        assert diff["instructions"] > 0
        # CASINO holds instructions longer than OoO overall on mcf...
        assert diff["total_delta"] > 0
        # ...and the report names the specific instructions involved.
        worst = diff["fell_behind"][0]
        assert worst["delta"] > 0
        assert isinstance(worst["seq"], int) and worst["op"]
        report = format_diff_report(diff)
        assert "casino fell behind ooo" in report
        assert f"#{worst['seq']}" in report
        assert "by opcode" in report

    def test_alignment_uses_seq_intersection(self):
        trace = _app_trace("hmmer")
        full = _schedule(make_ino_config, trace)
        half = full[: len(full) // 2]
        diff = diff_schedules(full, half)
        assert diff["instructions"] == len(
            {r[0] for r in half if r[2] is not None})
