"""Configuration factories must encode Table I exactly."""

import pytest

from repro.common.params import (
    NUM_FP_ARCH,
    NUM_INT_ARCH,
    RENAME_CONDITIONAL,
    RENAME_CONVENTIONAL,
    CacheConfig,
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)


class TestTableI:
    def test_ino_baseline(self):
        cfg = make_ino_config()
        assert cfg.kind == "ino"
        assert cfg.width == 2
        assert cfg.iq_size == 16
        assert cfg.scb_size == 4
        assert cfg.sq_sb_size == 4

    def test_casino(self):
        cfg = make_casino_config()
        assert cfg.kind == "casino"
        assert cfg.siq_size == 4
        assert cfg.iq_size == 12
        assert cfg.sq_sb_size == 8
        assert cfg.prf_int == 32
        assert cfg.prf_fp == 14
        assert cfg.rob_size == 32
        assert cfg.rename_scheme == RENAME_CONDITIONAL
        assert cfg.osca_entries == 64

    def test_ooo(self):
        cfg = make_ooo_config()
        assert cfg.kind == "ooo"
        assert cfg.iq_size == 16
        assert cfg.lq_size == 16
        assert cfg.sq_sb_size == 8
        assert cfg.prf_int == 48
        assert cfg.prf_fp == 24
        assert cfg.rob_size == 32
        assert cfg.rename_scheme == RENAME_CONVENTIONAL

    def test_specino_policy(self):
        cfg = make_specino_config(2, 1, mem=False)
        assert cfg.specino_ws == 2
        assert cfg.specino_so == 1
        assert not cfg.specino_mem
        assert "nonmem" in cfg.name

    def test_slice_cores(self):
        lsc = make_lsc_config()
        fwy = make_freeway_config()
        assert lsc.kind == "lsc" and fwy.kind == "freeway"
        assert lsc.biq_size == 32 and lsc.aiq_size == 32
        assert fwy.yiq_size == 32

    def test_functional_units(self):
        for cfg in (make_ino_config(), make_casino_config(), make_ooo_config()):
            assert (cfg.n_alu, cfg.n_fpu, cfg.n_agu) == (2, 2, 2)


class TestScaling:
    def test_casino_4way_quadruples_window(self):
        cfg = make_casino_config(4)
        assert cfg.width == 4
        assert cfg.rob_size == 128
        assert cfg.iq_size == 48
        assert cfg.sq_sb_size == 32
        # PRF scales its *spare* registers, not the architectural base.
        assert cfg.prf_int == NUM_INT_ARCH + (32 - NUM_INT_ARCH) * 4
        assert cfg.prf_fp == NUM_FP_ARCH + (14 - NUM_FP_ARCH) * 4

    def test_casino_wider_inserts_intermediate_siqs(self):
        assert make_casino_config(2).n_intermediate_siqs == 0
        assert make_casino_config(3).n_intermediate_siqs == 1
        assert make_casino_config(4).n_intermediate_siqs == 2

    def test_casino_wider_disables_conditional_renaming(self):
        assert make_casino_config(3).rename_scheme == RENAME_CONVENTIONAL
        assert make_casino_config(4).rename_scheme == RENAME_CONVENTIONAL

    def test_fus_do_not_scale(self):
        cfg = make_ooo_config(4)
        assert cfg.n_fpu == 2
        assert cfg.n_agu == 2

    def test_ooo_3way_doubles(self):
        cfg = make_ooo_config(3)
        assert cfg.rob_size == 64
        assert cfg.lq_size == 32


class TestCacheConfig:
    def test_n_sets(self):
        assert CacheConfig(32, 8, 64).n_sets == 64
        assert CacheConfig(1024, 16, 64).n_sets == 1024

    def test_l1_geometry_table1(self):
        from repro.common.params import MemoryConfig
        mem = MemoryConfig()
        assert mem.l1d.size_kib == 32 and mem.l1d.assoc == 8
        assert mem.l1d.latency == 4
        assert mem.l2.size_kib == 1024 and mem.l2.latency == 11
