"""CASINO core behaviour: cascaded windows, speculative issue, conditional
renaming, data buffer, on-commit value-check and OSCA."""

import dataclasses

import pytest

from repro.common.params import (
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    DISAMBIG_NOLQ,
    DISAMBIG_NOLQ_OSCA,
    RENAME_CONVENTIONAL,
    make_casino_config,
    make_ino_config,
)
from tests.util import alu, div, independent_ops, load, run_trace, store


def casino(**overrides):
    return dataclasses.replace(make_casino_config(), **overrides)


class TestCascadedScheduling:
    def test_commits_everything(self):
        stats, _ = run_trace(make_casino_config(), independent_ops(60))
        assert stats.committed == 60

    def test_speculative_issue_behind_stall(self):
        """Independent work behind a stalled consumer issues from the
        S-IQ — the paper's core claim."""
        trace = [div(1), alu(2, (1,))] + independent_ops(20, start_reg=3)
        stats, _ = run_trace(make_casino_config(), trace)
        assert stats.get("issued_spec") > 0
        assert stats.get("siq_passes") >= 1  # div's consumer goes to the IQ

    def test_beats_ino_on_divider_pairs(self):
        trace = []
        for i in range(4):
            trace.extend([div(1 + i), alu(10 + i, (1 + i,))])
        s_cas, _ = run_trace(make_casino_config(), list(trace))
        s_ino, _ = run_trace(make_ino_config(), list(trace))
        assert s_cas.cycles < s_ino.cycles - 10

    def test_dependence_chains_issue_from_iq(self):
        """A pure serial chain cannot be speculated: it flows through the
        IQ in program order."""
        trace = [div(1)] + [alu(1, (1,)) for _ in range(10)]
        stats, _ = run_trace(make_casino_config(), trace)
        assert stats.get("issued_iq") >= 10

    def test_issue_breakdown_counters_sum(self):
        trace = [div(1), alu(2, (1,))] + independent_ops(20, start_reg=3)
        stats, _ = run_trace(make_casino_config(), trace)
        assert (stats.get("issued_spec") + stats.get("issued_iq")
                == stats.get("issued"))
        assert (stats.get("committed_s_issue")
                + stats.get("committed_iq_issue") == stats.committed)

    def test_ready_head_waits_for_resources(self):
        """A ready instruction short a resource waits at the S-IQ head
        (footnote 1) rather than passing: nothing younger may overtake
        it into the ROB."""
        # Saturate the FP units: two long FP dividers, then an FP op that
        # is ready but has no FPU this cycle.
        from repro.isa.instruction import DynInst
        from repro.isa.opcodes import OpClass
        trace = [DynInst(pc=0, op=OpClass.FP_DIV, srcs=(), dst=16 + i)
                 for i in range(6)]
        stats, _ = run_trace(make_casino_config(), trace)
        assert stats.committed == 6


class TestConditionalRenaming:
    def test_fewer_allocations_than_conventional(self):
        trace = [div(1)] + [alu(2, (1,)), alu(3, (2,)), alu(4, (3,))] \
            + independent_ops(20, start_reg=5)
        cond, _ = run_trace(make_casino_config(), list(trace))
        conv, _ = run_trace(casino(rename_scheme=RENAME_CONVENTIONAL),
                            list(trace))
        assert cond.get("reg_allocs") < conv.get("reg_allocs")
        assert cond.committed == conv.committed == len(trace)

    def test_passed_instructions_do_not_allocate(self):
        # Three consumers of the div all pass to the IQ (within the 2-bit
        # ProducerCount bound) while the div is pending: only the div
        # itself allocates a register.
        trace = [div(1)] + [alu(2, (1,)) for _ in range(3)]
        stats, _ = run_trace(make_casino_config(), trace)
        assert stats.get("reg_allocs") == 1
        assert stats.get("producer_count_incs") == 3

    def test_producer_count_limit_stalls_passing(self):
        """A fourth pending IQ writer of one register exceeds the 2-bit
        ProducerCount and must wait (Section III-C3)."""
        trace = [div(1)] + [alu(2, (1,)) for _ in range(6)] + [alu(3, (2,))]
        stats, _ = run_trace(make_casino_config(), trace)
        assert stats.get("pass_stall_rename") > 0
        assert stats.committed == 8

    def test_prf_exhaustion_blocks_spec_issue(self):
        cfg = casino(prf_int=17)  # one spare integer register
        trace = independent_ops(12, start_reg=1)
        stats, _ = run_trace(cfg, trace)
        assert stats.committed == 12
        assert stats.get("issue_stall_prf") > 0

    def test_free_registers_balance_after_run(self):
        from repro.common.params import NUM_INT_ARCH
        cfg = make_casino_config()
        stats, core = run_trace(cfg, independent_ops(40))
        # All committed: spare registers minus live final mappings.
        assert 0 <= core.renamer.free_int <= cfg.prf_int - NUM_INT_ARCH


class TestDataBuffer:
    def test_dbuf_stall_counted_when_tiny(self):
        cfg = casino(data_buffer_size=1)
        # Long IQ-resident chain: every IQ issue needs the single entry.
        trace = [div(1)] + [alu(2, (1,)), alu(3, (2,)), alu(4, (3,)),
                            alu(5, (4,)), alu(6, (5,))] + [div(7)] \
            + [alu(8, (7,)), alu(9, (8,))]
        stats, _ = run_trace(cfg, trace)
        assert stats.committed == len(trace)

    def test_conventional_renaming_needs_no_dbuf(self):
        cfg = casino(rename_scheme=RENAME_CONVENTIONAL, data_buffer_size=0)
        stats, _ = run_trace(cfg, [div(1)] + [alu(2, (1,)) for _ in range(3)])
        assert stats.committed == 4
        assert stats.get("dbuf_access") == 0


class TestMemoryDisambiguation:
    def _violation_trace(self):
        return [div(1), store(1, 14, 0xC000), load(2, 15, 0xC000),
                alu(3, (2,))] + independent_ops(8, start_reg=4)

    def test_on_commit_value_check_catches_violation(self):
        stats, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ),
                             self._violation_trace())
        assert stats.get("mem_order_violations") >= 1
        assert stats.get("squashes") >= 1
        assert stats.committed == 12

    def test_disjoint_addresses_no_violation(self):
        trace = [div(1), store(1, 14, 0xC000), load(2, 15, 0xD000)]
        stats, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ), trace)
        assert stats.get("mem_order_violations") == 0

    def test_agi_ordering_never_violates(self):
        stats, _ = run_trace(casino(disambiguation=DISAMBIG_AGI_ORDERING),
                             self._violation_trace())
        assert stats.get("mem_order_violations") == 0
        assert stats.get("sentinels_set") == 0
        assert stats.committed == 12

    def test_agi_ordering_is_slower(self):
        trace = [div(1), store(1, 14, 0xC000),
                 load(2, 15, 0xE000), alu(3, (2,))] \
            + independent_ops(8, start_reg=4)
        fast, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ_OSCA),
                            list(trace))
        slow, _ = run_trace(casino(disambiguation=DISAMBIG_AGI_ORDERING),
                            list(trace))
        assert slow.cycles >= fast.cycles

    def test_osca_skips_search_when_no_outstanding_store(self):
        trace = [load(1, 15, 0x8000), load(2, 15, 0x8040)]
        stats, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ_OSCA), trace)
        assert stats.get("osca_search_skips") == 2
        assert stats.get("sq_searches") == 0

    def test_osca_forces_search_on_matching_store(self):
        trace = [store(15, 14, 0x8000), load(1, 15, 0x8000)]
        stats, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ_OSCA), trace)
        assert stats.get("sq_searches") >= 1
        assert stats.get("stl_forwards") == 1

    def test_osca_reduces_searches_vs_nolq(self):
        trace = ([store(15, 14, 0xC000)]
                 + [load(1 + i % 4, 15, 0x9000 + 64 * i) for i in range(12)])
        nolq, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ), list(trace))
        osca, _ = run_trace(casino(disambiguation=DISAMBIG_NOLQ_OSCA),
                            list(trace))
        assert osca.get("sq_searches") < nolq.get("sq_searches")

    def test_fully_ooo_mode_uses_lq(self):
        stats, _ = run_trace(casino(disambiguation=DISAMBIG_FULLY_OOO),
                             self._violation_trace())
        assert stats.get("lq_writes") >= 1
        assert stats.committed == 12

    def test_store_forwarding(self):
        trace = [store(15, 14, 0xA000), load(1, 15, 0xA000)]
        stats, _ = run_trace(make_casino_config(), trace)
        assert stats.get("stl_forwards") == 1

    def test_sq_capacity_blocks_siq_exit(self):
        cfg = casino(sq_sb_size=2)
        trace = [store(15, 14, 0xB000 + 4096 * i) for i in range(10)]
        stats, _ = run_trace(cfg, trace)
        assert stats.committed == 10


class TestWiderCascades:
    def test_3way_runs_and_helps(self):
        trace = independent_ops(60)
        s2, _ = run_trace(make_casino_config(2), list(trace))
        s3, _ = run_trace(make_casino_config(3), list(trace))
        assert s3.committed == 60
        assert s3.cycles <= s2.cycles

    def test_4way_has_two_intermediate_siqs(self):
        from repro.cores import build_core
        core = build_core(make_casino_config(4))
        core.reset(independent_ops(4))
        assert len(core.queues) == 4  # S-IQ + 2 intermediates + IQ

    def test_4way_commits_with_dividers(self):
        trace = []
        for i in range(8):
            trace.extend([div(1 + i % 8), alu(9, (1 + i % 8,))])
        stats, _ = run_trace(make_casino_config(4), trace)
        assert stats.committed == 16


class TestRecovery:
    def test_squash_and_reexecute_preserves_count(self):
        trace = ([div(1), store(1, 14, 0xC000), load(2, 15, 0xC000)]
                 + independent_ops(20, start_reg=3)
                 + [store(15, 13, 0xC040), load(4, 15, 0xC040)])
        stats, core = run_trace(casino(disambiguation=DISAMBIG_NOLQ), trace)
        assert stats.committed == len(trace)
        assert core.lsu.empty
        assert not core.lsu.sentinels

    def test_osca_drains_to_zero(self):
        trace = [div(1), store(1, 14, 0xC000), load(2, 15, 0xC000)] \
            + [store(15, 14, 0xD000 + 64 * i) for i in range(6)]
        stats, core = run_trace(make_casino_config(), trace)
        assert core.lsu.osca.total == 0

    def test_renamer_pending_empty_after_drain(self):
        trace = [div(1)] + [alu(2, (1,)) for _ in range(5)]
        stats, core = run_trace(make_casino_config(), trace)
        assert not core.renamer.pending
