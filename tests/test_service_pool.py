"""Worker pool: parity with serial, caching, faults, timeouts, cancel."""

import dataclasses

import pytest

from repro.common.params import make_casino_config, make_ino_config, make_ooo_config
from repro.service.jobs import JobSpec, execute_job
from repro.service.pool import SimulationPool
from repro.service.store import ResultStore
from repro.workloads.suite import SUITE

N, WARMUP = 1200, 200


def _specs(pairs, **kw):
    factories = {"ino": make_ino_config, "casino": make_casino_config,
                 "ooo": make_ooo_config}
    return [JobSpec.make(factories[core](), SUITE[app],
                         n_instrs=N, warmup=WARMUP, **kw)
            for core, app in pairs]


PAIRS = [("ino", "hmmer"), ("casino", "hmmer"),
         ("ino", "mcf"), ("casino", "mcf")]


class TestParity:
    def test_pool_records_identical_to_serial(self):
        """Acceptance: pooled execution is counter-digest-identical to
        serial execution on every core x app pair."""
        specs = _specs(PAIRS)
        serial = [execute_job(spec) for spec in specs]
        with SimulationPool(n_workers=2) as pool:
            pooled = pool.run_batch(specs)
        for ser, par, (core, app) in zip(serial, pooled, PAIRS):
            assert not par["failed"], (core, app, par.get("error"))
            assert ser == par, f"pool diverged from serial on {core}/{app}"
            assert ser["manifest"]["counter_digest"] == \
                par["manifest"]["counter_digest"]

    def test_batch_preserves_order(self):
        specs = _specs(PAIRS)
        with SimulationPool(n_workers=2) as pool:
            records = pool.run_batch(specs)
        assert [(r["core"], r["app"]) for r in records] == PAIRS


class TestStoreIntegration:
    def test_warm_rerun_performs_zero_simulations(self, tmp_path):
        """Acceptance: an immediate rerun against a warm store serves
        everything from cache — zero jobs reach a worker."""
        specs = _specs(PAIRS)
        store = ResultStore(tmp_path / "store")
        with SimulationPool(n_workers=2, store=store) as pool:
            cold = pool.run_batch(specs)
            assert pool.stats["dispatched"] == len(specs)
        assert len(store) == len(specs)

        rerun_store = ResultStore(tmp_path / "store")
        with SimulationPool(n_workers=2, store=rerun_store) as pool:
            warm = pool.run_batch(specs)
            assert pool.stats["dispatched"] == 0
            assert pool.stats["cached"] == len(specs)
        assert rerun_store.stats["hits"] == len(specs)
        assert rerun_store.stats["misses"] == 0
        assert warm == cold

    def test_failure_records_not_stored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        bad = dataclasses.replace(
            _specs([("ino", "hmmer")])[0], n_instrs=0, warmup=0)
        with SimulationPool(n_workers=1, store=store) as pool:
            (record, ) = pool.run_batch([bad])
        if record["failed"]:  # only failed runs must stay out of the store
            assert len(store) == 0


class TestFaults:
    def test_worker_death_contained_and_job_recovered(self):
        """A job that kills its worker is redelivered to a fresh worker
        and still completes; the pool respawns and finishes the rest of
        the batch."""
        specs = _specs([("ino", "hmmer"), ("ino", "mcf")])
        specs[0] = dataclasses.replace(specs[0], test_kill=1)
        with SimulationPool(n_workers=1, max_worker_deaths=3) as pool:
            records = pool.run_batch(specs)
            stats = pool.stats_snapshot()
        assert stats["worker_deaths"] >= 1
        assert stats["redeliveries"] >= 1
        for record in records:
            assert not record["failed"]

    def test_poison_job_dead_letters_after_redelivery_budget(self):
        """A job that kills every worker it touches is quarantined as a
        dead-letter after its redelivery budget, instead of taking the
        whole fleet down; innocent jobs still complete."""
        specs = _specs([("ino", "hmmer"), ("ino", "mcf")])
        specs[0] = dataclasses.replace(specs[0], test_kill=99)
        with SimulationPool(n_workers=1, max_worker_deaths=10,
                            max_redeliveries=2) as pool:
            records = pool.run_batch(specs)
            stats = pool.stats_snapshot()
        assert records[0]["failed"]
        assert records[0]["status"] == "dead_letter"
        assert not records[1]["failed"]
        assert stats["dead_lettered"] == 1
        # first delivery + max_redeliveries redeliveries, then quarantine
        assert stats["worker_deaths"] == 3
        assert pool.dead_letters() and \
            pool.dead_letters()[0]["status"] == "dead_letter"

    def test_stalled_heartbeat_lease_reclaimed_bit_identical(self):
        """A worker that stops heartbeating loses its lease; the job is
        redelivered and the rerun is counter-digest identical to serial
        execution."""
        specs = _specs([("ino", "hmmer")])
        serial = execute_job(specs[0])
        specs[0] = dataclasses.replace(specs[0], test_stall_s=30.0)
        with SimulationPool(n_workers=1, lease_s=0.6,
                            heartbeat_s=0.1) as pool:
            (record, ) = pool.run_batch(specs)
            stats = pool.stats_snapshot()
        assert stats["lease_expired"] >= 1
        assert stats["redeliveries"] >= 1
        assert not record["failed"]
        assert record["manifest"]["counter_digest"] == \
            serial["manifest"]["counter_digest"]

    def test_degrades_to_serial_after_max_deaths(self):
        specs = _specs([("ino", "hmmer"), ("ino", "mcf"), ("ino", "milc")])
        specs[0] = dataclasses.replace(specs[0], test_kill=True)
        with SimulationPool(n_workers=1, max_worker_deaths=1) as pool:
            records = pool.run_batch(specs)
            assert pool.degraded
            stats = pool.stats_snapshot()
        assert stats["worker_deaths"] == 1
        assert stats["serial_fallbacks"] >= len(specs) - 1
        for record in records:
            assert not record["failed"]

    def test_job_timeout_enforced(self):
        slow = _specs([("casino", "mcf")])
        slow[0] = dataclasses.replace(slow[0], n_instrs=400_000,
                                      warmup=1000)
        with SimulationPool(n_workers=1, timeout=0.4) as pool:
            (record, ) = pool.run_batch(slow)
            stats = pool.stats_snapshot()
        assert record["failed"]
        assert record["status"] == "timeout"
        assert stats["timeouts"] == 1

    def test_cancel_pending_flushes_queued_jobs(self):
        """Jobs queued behind a running one are flushed by cancel; the
        in-flight job still completes."""
        specs = _specs([("casino", "mcf"), ("ino", "hmmer"),
                        ("ino", "mcf"), ("ino", "milc")])
        specs[0] = dataclasses.replace(specs[0], n_instrs=60_000,
                                       warmup=2000)
        with SimulationPool(n_workers=1) as pool:
            ids = [pool.submit(spec) for spec in specs]
            deadline = 60
            import time
            start = time.monotonic()
            while pool.status(ids[0]) != "running":
                assert time.monotonic() - start < deadline
                pool.tick(block_s=0.02)
                if pool.done(ids[0]):
                    break
            pool.cancel_pending()
            pool.wait(ids)
            first = pool.record(ids[0])
            rest = [pool.record(job_id) for job_id in ids[1:]]
            stats = pool.stats_snapshot()
        assert not first["failed"]
        for record in rest:
            assert record["status"] == "cancelled"
        assert stats["cancelled"] == len(rest)

    def test_trace_evictions_reported(self):
        with SimulationPool(n_workers=1) as pool:
            pool.run_batch(_specs([("ino", "hmmer")]))
            snapshot = pool.stats_snapshot()
        assert "trace_evictions" in snapshot
        assert snapshot["trace_evictions"] >= 0
