"""Invariant sanitizer: clean runs stay clean (and bit-identical), seeded
corruption is caught with a structured diagnostic."""

import types

import pytest

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.cores import build_core
from repro.engine.faults import Fault, FaultInjector
from repro.engine.sanitizer import (
    Sanitizer,
    SanitizerError,
    check_counters,
    check_occupancy,
    check_rename,
    resolve_sanitizer,
)
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.suite import get_profile
from tests.util import div, with_pcs

ALL_CONFIGS = [make_ino_config, make_lsc_config, make_freeway_config,
               make_specino_config, make_casino_config, make_ooo_config]
IDS = [make().name for make in ALL_CONFIGS]


def real_trace(app="mcf", n=3_000):
    return SyntheticWorkload(get_profile(app)).generate(n)


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_clean_run_passes_sanitizer(make):
    """A healthy simulation of a real workload trips no invariant check."""
    trace = real_trace()
    stats = build_core(make()).run(trace, sanitize=True)
    assert stats.get("committed") == len(trace)


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_sanitizer_is_timing_neutral(make):
    """Sanitized and unsanitized runs must be bit-identical: the checks
    only read simulator state."""
    trace = real_trace()
    plain = build_core(make()).run(trace, sanitize=False)
    checked = build_core(make()).run(trace, sanitize=True)
    assert dict(plain.counters) == dict(checked.counters)


def test_corrupt_ready_caught_by_sanitizer_only():
    """A corrupted ready bit lets a consumer issue before its producer
    completed.  Without the sanitizer the run retires silently-wrong
    timing; with it the dataflow/timestamp contract fires at commit."""
    cfg = make_ooo_config()
    trace = with_pcs([div(1)] + [div(1, (1,)) for _ in range(60)])
    faults = [Fault("corrupt_ready", seq=30)]
    # Silent without the sanitizer:
    stats = build_core(cfg).run(trace, faults=FaultInjector(faults))
    assert stats.get("committed") == len(trace)
    # Caught with it:
    faults = [Fault("corrupt_ready", seq=30)]
    with pytest.raises(SanitizerError) as err:
        build_core(cfg).run(trace, faults=FaultInjector(faults),
                            sanitize=True)
    details = err.value.details
    assert details["check"] in ("dataflow", "timestamps")
    assert details["debug"]
    assert details["violation"]


# -- individual checks against stub state ------------------------------------

class _StubCore:
    def __init__(self, **attrs):
        self.cfg = types.SimpleNamespace(name="stub", producer_count_max=3)
        self.stats = types.SimpleNamespace(counters={})
        for key, value in attrs.items():
            setattr(self, key, value)

    def _occupancy(self):
        return getattr(self, "occ", {})

    def _debug_state(self):
        return "stub-state"


def test_check_occupancy_bounds():
    assert check_occupancy(_StubCore(occ={"iq": (3, 8)}), 0) is None
    assert "exceeds capacity" in check_occupancy(
        _StubCore(occ={"iq": (9, 8)}), 0)
    assert "negative" in check_occupancy(_StubCore(occ={"rob": (-1, 8)}), 0)


def test_check_counters_negative():
    core = _StubCore()
    core.stats.counters = {"committed": 10, "squashes": -2}
    assert "squashes" in check_counters(core, 0)
    core.stats.counters["squashes"] = 0
    assert check_counters(core, 0) is None


def test_check_rename_violations():
    entry = lambda phys: types.SimpleNamespace(phys=phys, fresh_phys=True)
    ok = _StubCore(renamer=types.SimpleNamespace(pending={7: 2}),
                   rob=[entry(1001), entry(1002)])
    assert check_rename(ok, 0) is None
    over = _StubCore(renamer=types.SimpleNamespace(pending={7: 5}), rob=[])
    assert "exceeds bound" in check_rename(over, 0)
    double = _StubCore(renamer=types.SimpleNamespace(pending={}),
                       rob=[entry(1001), entry(1001)])
    assert "allocated twice" in check_rename(double, 0)
    # Cores without a renamer are skipped entirely.
    assert check_rename(_StubCore(), 0) is None


def test_sanitizer_structured_failure():
    """A failing check raises with core/cycle/check/debug details."""
    boom = ("custom", lambda core, cycle: "it broke")
    with pytest.raises(SanitizerError) as err:
        Sanitizer(cycle_checks=[boom]).check_cycle(_StubCore(), 42)
    details = err.value.details
    assert details == {"core": "stub", "check": "custom", "cycle": 42,
                       "violation": "it broke", "debug": "stub-state"}


def test_sanitizer_pluggable_checks():
    """Custom check lists replace the defaults and actually run."""
    calls = []
    probe = ("probe", lambda core, cycle: calls.append(cycle))
    sanitizer = Sanitizer(cycle_checks=[probe], commit_checks=[])
    build_core(make_ino_config()).run(real_trace(n=500), sanitize=sanitizer)
    assert calls, "custom cycle check never ran"
    assert sanitizer.commit_checks == []


def test_resolve_sanitizer(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert resolve_sanitizer(None) is None
    assert resolve_sanitizer(False) is None
    assert isinstance(resolve_sanitizer(True), Sanitizer)
    existing = Sanitizer(cycle_checks=[])
    assert resolve_sanitizer(existing) is existing
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert isinstance(resolve_sanitizer(None), Sanitizer)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert resolve_sanitizer(None) is None
