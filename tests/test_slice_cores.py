"""Load Slice Core and Freeway: IST learning, steering, hazards, Y-IQ."""

import pytest

from repro.common.params import make_freeway_config, make_ino_config, make_lsc_config
from repro.cores import build_core
from repro.cores.lsc import InstructionSliceTable
from repro.workloads import get_profile
from repro.workloads.generator import SyntheticWorkload
from tests.util import alu, div, independent_ops, load, run_trace, store, with_pcs


class TestInstructionSliceTable:
    def test_add_and_contains(self):
        ist = InstructionSliceTable(capacity=4)
        ist.add(0x100)
        assert 0x100 in ist
        assert 0x104 not in ist

    def test_fifo_eviction(self):
        ist = InstructionSliceTable(capacity=2)
        ist.add(0x100)
        ist.add(0x104)
        ist.add(0x108)
        assert 0x100 not in ist
        assert 0x108 in ist

    def test_re_add_is_idempotent(self):
        ist = InstructionSliceTable(capacity=2)
        ist.add(0x100)
        ist.add(0x100)
        ist.add(0x104)
        assert 0x100 in ist and 0x104 in ist


def loop_trace(iterations=8):
    """AGI chain: alu feeds the load's address register; repeated PCs let
    the IST learn the slice across iterations."""
    body = [alu(5, (5,)), alu(6, (5,)), load(1, 6, 0x4000),
            alu(2, (1,)), alu(3, (2,))]
    pcs = [0x1000 + 4 * i for i in range(len(body))]
    trace = []
    for it in range(iterations):
        for pc, proto in zip(pcs, body):
            inst = type(proto)(pc=pc, op=proto.op, srcs=proto.srcs,
                               dst=proto.dst, mem_addr=proto.mem_addr,
                               mem_size=proto.mem_size)
            trace.append(inst)
    return trace


class TestLoadSliceCore:
    def test_commits_everything(self):
        stats, _ = run_trace(make_lsc_config(), independent_ops(40))
        assert stats.committed == 40

    def test_ist_learns_address_producers(self):
        core = build_core(make_lsc_config())
        trace = loop_trace(8)
        core.run(trace, warm_icache=True)
        # alu(6,(5,)) at pc 0x1004 produces the load's base register: it
        # must be in the IST after the first iteration.
        assert 0x1004 in core.ist

    def test_ist_learning_is_iterative(self):
        """The slice grows one level per iteration: the grand-producer
        enters the IST only after the direct producer is marked."""
        core = build_core(make_lsc_config())
        core.run(loop_trace(8), warm_icache=True)
        assert 0x1000 in core.ist  # alu(5,(5,)): 2 levels up

    def test_memory_ops_steer_to_biq(self):
        stats, core = run_trace(make_lsc_config(),
                                [load(1, 15, 0x4000), alu(2, (2,))])
        assert stats.get("issued_biq") >= 1
        assert stats.get("issued_aiq") >= 1

    def test_no_memory_order_violations_ever(self):
        trace = [div(1), store(1, 14, 0xC000), load(2, 15, 0xC000)]
        stats, _ = run_trace(make_lsc_config(), trace)
        assert stats.get("mem_order_violations") == 0
        assert stats.committed == 3

    def test_cross_queue_hazard_stalls(self):
        """A B-IQ instruction writing a register an older unissued A-IQ
        instruction reads must wait (no renaming)."""
        stats, _ = run_trace(make_lsc_config(),
                             [div(1), alu(2, (1,)), load(2, 15, 0x4000)])
        assert stats.get("hazard_stalls") > 0
        assert stats.committed == 3


class TestFreeway:
    def test_commits_everything(self):
        stats, _ = run_trace(make_freeway_config(), independent_ops(40))
        assert stats.committed == 40

    def test_dependent_slices_yield(self):
        """A chase pattern (load feeding the next load's address) sends
        dependent slice work to the Y-IQ."""
        trace = []
        for i in range(6):
            trace.extend([load(1, 1, 0x4000 + 0x1000 * i), alu(2, (1,)),
                          load(3, 2, 0x8000 + 0x1000 * i)])
        stats, core = run_trace(make_freeway_config(), trace)
        assert stats.get("yiq_steered") > 0
        assert stats.committed == len(trace)

    def test_beats_or_matches_lsc_on_suite_app(self):
        profile = get_profile("omnetpp")
        trace = SyntheticWorkload(profile).generate(8000)
        lsc = build_core(make_lsc_config()).run(list(trace), warmup=2000)
        fwy = build_core(make_freeway_config()).run(list(trace), warmup=2000)
        assert fwy.ipc >= lsc.ipc * 0.97  # dependence-aware never much worse

    def test_both_beat_ino_on_mlp_app(self):
        profile = get_profile("mcf")
        trace = SyntheticWorkload(profile).generate(8000)
        ino = build_core(make_ino_config()).run(list(trace), warmup=2000)
        lsc = build_core(make_lsc_config()).run(list(trace), warmup=2000)
        assert lsc.ipc > ino.ipc
