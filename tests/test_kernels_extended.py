"""Functional correctness of the extended kernels + their timing character."""

import pytest

from repro.common.params import make_casino_config, make_ino_config, make_ooo_config
from repro.cores import build_core
from repro.isa.emulator import Emulator
from repro.workloads.kernels import (
    KERNELS,
    binary_search_program,
    kernel_trace,
    matmul_program,
    memcpy_program,
    partition_program,
)


class TestMatmul:
    def test_result_correct(self):
        n = 6
        program, memory = matmul_program(n=n)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        a = [[i + j + 1 for j in range(n)] for i in range(n)]
        b = [[(i * j) % 7 + 1 for j in range(n)] for i in range(n)]
        for i in range(n):
            for j in range(n):
                expect = sum(a[i][k] * b[k][j] for k in range(n))
                assert emu.memory[0xB0_0000 + 8 * (i * n + j)] == expect

    def test_compute_bound_high_ipc(self):
        trace = kernel_trace("matmul", n=8)
        stats = build_core(make_ooo_config()).run(trace, warmup=500)
        assert stats.ipc > 0.8  # small matrices live in the L1


class TestMemcpy:
    def test_copies_exactly(self):
        program, memory = memcpy_program(n=64)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        for i in range(64):
            assert emu.memory[0xD0_0000 + 8 * i] == i * 3 + 1

    def test_streaming_prefetch_covers(self):
        trace = kernel_trace("memcpy", n=2048)
        stats = build_core(make_casino_config()).run(trace, warmup=2000)
        # After warm-up, the stride prefetcher covers the source stream.
        assert stats.get("prefetches_issued") > 0


class TestBinarySearch:
    def test_terminates_and_bounded(self):
        program, memory = binary_search_program(n=256, lookups=64)
        emu = Emulator(program, memory=memory)
        trace = list(emu.run())
        # Each lookup needs <= log2(256)+1 = 9 probe loads.
        probes = sum(1 for d in trace if d.is_load)
        assert probes <= 64 * 10

    def test_branchy_behaviour(self):
        trace = kernel_trace("binary_search", n=512, lookups=128)
        stats = build_core(make_ino_config()).run(trace, warmup=500)
        # Data-dependent direction branches mispredict substantially.
        assert stats.get("bp_mispredicts") > 50


class TestPartition:
    def test_partitions_correctly(self):
        n = 128
        program, memory = partition_program(n=n)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        values = [emu.memory[0xF0_0000 + 8 * i] for i in range(n)]
        pivot = n // 2
        smaller = sum(1 for v in values if v < pivot)
        assert sorted(values) == list(range(n))      # a permutation
        assert all(v < pivot for v in values[:smaller])
        assert all(v >= pivot for v in values[smaller:])

    def test_aliasing_pressure(self):
        """Partition's swap stores land next to in-flight loads: the
        CASINO value-check path gets exercised without deadlock."""
        trace = kernel_trace("partition", n=512)
        stats = build_core(make_casino_config()).run(trace, warmup=500)
        # The warm-up snapshot lands on a commit-group boundary, so up to
        # width-1 extra instructions may fall into the warm-up window.
        assert len(trace) - 502 <= stats.committed <= len(trace) - 500


class TestAllKernelsOnAllCores:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_kernel_commits_everywhere(self, kernel):
        small = {
            "pointer_chase": dict(nodes=64, hops=128),
            "daxpy": dict(n=64, passes=2),
            "reduction": dict(n=128),
            "histogram": dict(n=128, buckets=16),
            "stencil3": dict(n=128),
            "matmul": dict(n=5),
            "memcpy": dict(n=128),
            "binary_search": dict(n=128, lookups=16),
            "partition": dict(n=128),
        }[kernel]
        trace = kernel_trace(kernel, **small)
        for make in (make_ino_config, make_casino_config, make_ooo_config):
            stats = build_core(make()).run(list(trace))
            assert stats.committed == len(trace), (kernel, make().name)
