"""Stall-on-use in-order core behaviour."""

import pytest

from repro.common.params import make_ino_config
from tests.util import alu, div, independent_ops, load, run_trace, serial_chain, store


class TestBasicExecution:
    def test_commits_everything(self):
        stats, _ = run_trace(make_ino_config(), independent_ops(50))
        assert stats.committed == 50

    def test_independent_ops_dual_issue(self):
        n = 64
        stats, _ = run_trace(make_ino_config(), independent_ops(n))
        # 2-wide: about n/2 cycles plus pipeline fill.
        assert stats.cycles < n
        assert stats.ipc > 1.0

    def test_serial_chain_single_issue(self):
        n = 64
        stats, _ = run_trace(make_ino_config(), serial_chain(n))
        assert stats.cycles >= n  # one dependent op per cycle at best
        assert stats.ipc <= 1.05

    def test_scb_window_bounds_inflight(self):
        # Four concurrent 12-cycle dividers exceed the 4-entry SCB: the
        # fifth cannot issue until the first writes back.
        insts = [div(i + 1) for i in range(8)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("issue_stall_scb") > 0


class TestStallOnUse:
    def test_consumer_position_matters(self):
        """Stall-on-use: a far consumer hides the divider's latency, an
        adjacent consumer exposes it.  The hiding capacity is bounded by
        the SCB, so we use a deep SCB to expose the full effect."""
        import dataclasses
        cfg = dataclasses.replace(make_ino_config(), scb_size=16)
        near = [div(1)] + [alu(2, (1,))] + independent_ops(20, start_reg=3)
        far = [div(1)] + independent_ops(20, start_reg=3) + [alu(2, (1,))]
        s_near, _ = run_trace(cfg, near)
        s_far, _ = run_trace(cfg, far)
        assert s_far.cycles < s_near.cycles

    def test_scb_bounds_latency_hiding(self):
        """The 4-entry SCB bounds memory/latency overlap: two long
        operations separated by filler cannot overlap through a full SCB,
        but do through a deep one."""
        import dataclasses
        trace = ([div(1)] + independent_ops(6, start_reg=5)
                 + [div(2)] + independent_ops(6, start_reg=5)
                 + [alu(3, (1,)), alu(4, (2,))])
        small, _ = run_trace(make_ino_config(), list(trace))
        deep, _ = run_trace(
            dataclasses.replace(make_ino_config(), scb_size=16), list(trace))
        assert deep.cycles < small.cycles

    def test_issue_is_strictly_in_order(self):
        # Even ready instructions cannot pass a stalled head.
        insts = [div(1), alu(2, (1,)), alu(3), alu(4)]
        stats, _ = run_trace(make_ino_config(), insts)
        # alu(3)/alu(4) wait for the consumer: runtime is dominated by div.
        assert stats.cycles >= 12

    def test_source_stall_counted(self):
        stats, _ = run_trace(make_ino_config(), [div(1), alu(2, (1,))])
        assert stats.get("issue_stall_src") > 0


class TestMemory:
    def test_load_miss_then_hit(self):
        insts = [load(1, 15, 0x8000), load(2, 15, 0x8000)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("l1d_misses") == 1
        # The second load either hits or merges with the in-flight fill.
        assert stats.get("l1d_hits") + stats.get("l1d_mshr_merges") == 1

    def test_store_to_load_forwarding(self):
        insts = [store(15, 14, 0x9000), load(1, 15, 0x9000)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("stl_forwards") == 1

    def test_stores_drain_through_sb(self):
        insts = [store(15, 14, 0x9000 + 64 * i) for i in range(8)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("sb_retires") == 8

    def test_sb_capacity_backpressure(self):
        # 16 stores to distinct lines (each a write miss) against a
        # 4-entry SB: commit must stall at least once.
        insts = [store(15, 14, 0xA000 + 4096 * i) for i in range(16)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("sb_full_stalls") > 0

    def test_no_speculation_no_violations(self):
        insts = [div(1), store(1, 14, 0xB000), load(2, 15, 0xB000)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("mem_order_violations") == 0
        assert stats.committed == 3
