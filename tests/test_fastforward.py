"""Event-driven quiescence skipping: bit-identity and O(events) cost.

The fast-forward layer (``CoreModel.run(fast_forward=...)``) may only
change *wall-clock* behaviour: simulated cycles, every counter, recorded
schedules and observer reports must be bit-identical with skipping on or
off, for every core model and workload shape.  These tests pin that
contract, plus the point of the whole exercise — a long dead span costs
O(events) ``_step`` calls, not O(cycles).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.cores import build_core
from repro.cores.inorder import InOrderCore
from repro.obs.accounting import CycleAccounting
from repro.obs.provenance import counter_digest
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.suite import SUITE

from tests.test_properties import CORE_FACTORIES, profiles
from tests.util import alu, div, load, serial_chain, with_pcs

APPS = ["hmmer", "mcf", "libquantum", "omnetpp"]

_TRACES = {}


def _trace(app: str, n: int = 2000):
    key = (app, n)
    if key not in _TRACES:
        _TRACES[key] = SyntheticWorkload(SUITE[app]).generate(n)
    return _TRACES[key]


def _run_pair(factory, trace, **kw):
    """One run with skipping forced on, one forced off; same everything
    else.  Returns (stats_on, core_on, stats_off, core_off)."""
    core_on = build_core(factory())
    stats_on = core_on.run(trace, fast_forward=True, **kw)
    core_off = build_core(factory())
    stats_off = core_off.run(trace, fast_forward=False, **kw)
    return stats_on, core_on, stats_off, core_off


class TestBitIdentity:
    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("factory", CORE_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_suite_apps_identical(self, factory, app):
        """Cycles and every counter match, skip on vs off, for every
        core model on every suite workload shape."""
        stats_on, _, stats_off, _ = _run_pair(factory, _trace(app),
                                              warmup=500)
        assert stats_on.cycles == stats_off.cycles
        assert counter_digest(stats_on) == counter_digest(stats_off)
        assert stats_on.as_dict() == stats_off.as_dict()

    @pytest.mark.parametrize("factory", CORE_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_recorded_schedules_identical(self, factory):
        """Per-instruction (issue, complete, commit) logs match exactly —
        skipping must not move any instruction's timing."""
        _, core_on, _, core_off = _run_pair(factory, _trace("mcf", 1200),
                                            record_schedule=True)
        sched_on = [(rec[0],) + rec[2:] for rec in core_on.schedule]
        sched_off = [(rec[0],) + rec[2:] for rec in core_off.schedule]
        assert sched_on == sched_off

    def test_kernel_traces_identical(self):
        """Hand-crafted stall-heavy kernels (long-latency divide chains,
        dependent loads) on every core."""
        kernels = [
            with_pcs([div(1), alu(2, (1,)), div(2, (2,)), alu(3, (2,))]),
            with_pcs([load(1, 2, 0x8000), alu(3, (1,))]
                     + serial_chain(20, reg=3)),
            with_pcs(serial_chain(40)),
        ]
        for factory in CORE_FACTORIES:
            for kernel in kernels:
                core_on = build_core(factory())
                stats_on = core_on.run(list(kernel), warm_icache=True,
                                       fast_forward=True)
                core_off = build_core(factory())
                stats_off = core_off.run(list(kernel), warm_icache=True,
                                         fast_forward=False)
                assert stats_on.cycles == stats_off.cycles, factory.__name__
                assert counter_digest(stats_on) == counter_digest(stats_off)

    def test_accounting_reports_identical(self):
        """CycleAccounting sees dead spans via on_idle_span; its report
        (totals and per-component attribution) must match a stepped run."""
        for factory in (make_ino_config, make_casino_config):
            acct_on, acct_off = CycleAccounting(), CycleAccounting()
            core_on = build_core(factory())
            core_on.run(_trace("mcf", 1500), warmup=300, accounting=acct_on,
                        fast_forward=True)
            core_off = build_core(factory())
            core_off.run(_trace("mcf", 1500), warmup=300,
                         accounting=acct_off, fast_forward=False)
            assert acct_on.report() == acct_off.report()
            assert acct_on.total_cycles == core_on.cycle + 1

    def test_sanitizer_run_matches_skip_on_run(self):
        """The sanitizer disables skipping internally; its timing must
        still match a fast-forwarded run of the same trace."""
        trace = _trace("hmmer", 1500)
        plain = build_core(make_casino_config()).run(trace,
                                                     fast_forward=True)
        sanitized = build_core(make_casino_config()).run(trace,
                                                         sanitize=True)
        assert counter_digest(plain) == counter_digest(sanitized)

    def test_env_var_disables_skipping(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SKIP", "1")
        core = build_core(make_ino_config())
        stats = core.run(_trace("mcf", 800))
        assert core.ff_spans == 0 and core.ff_skipped_cycles == 0
        monkeypatch.delenv("REPRO_NO_SKIP")
        core_on = build_core(make_ino_config())
        stats_on = core_on.run(_trace("mcf", 800))
        assert counter_digest(stats) == counter_digest(stats_on)


@given(profile=profiles(), factory=st.sampled_from(CORE_FACTORIES))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_skip_equivalence(profile, factory):
    """On arbitrary workload shapes, skip-on and skip-off runs are
    indistinguishable in cycles and counters for every core model."""
    trace = SyntheticWorkload(profile).generate(400)
    stats_on, _, stats_off, _ = _run_pair(factory, trace,
                                          max_cycles=400_000)
    assert stats_on.cycles == stats_off.cycles
    assert counter_digest(stats_on) == counter_digest(stats_off)


class _StepCountingCore(InOrderCore):
    """Probe: counts how many cycles are actually stepped."""

    def __init__(self, *a, **kw):
        super().__init__(*a, **kw)
        self.steps = 0

    def _step(self, cycle: int) -> None:
        self.steps += 1
        super()._step(cycle)


class TestEventDrivenCost:
    def test_dram_stall_costs_events_not_cycles(self):
        """A cold load miss to DRAM stalls the in-order core for hundreds
        of cycles; the fast-forward layer must cross that span in O(1)
        steps instead of stepping every cycle of it."""
        trace = with_pcs([load(1, 2, 0x40000), alu(3, (1,))]
                         + serial_chain(10, reg=3))
        probe = _StepCountingCore(make_ino_config())
        stats = probe.run(list(trace), warm_icache=True, fast_forward=True)
        assert stats.cycles > 100          # the DRAM stall happened
        assert probe.ff_skipped_cycles > 0.5 * stats.cycles
        assert probe.steps < 0.5 * stats.cycles
        # And a stepped control run visits every cycle but agrees on time.
        control = _StepCountingCore(make_ino_config())
        control_stats = control.run(list(trace), warm_icache=True,
                                    fast_forward=False)
        assert control.steps == control_stats.cycles
        assert control_stats.cycles == stats.cycles
        assert counter_digest(control_stats) == counter_digest(stats)

    def test_skipping_actually_engages_on_suite_work(self):
        """mcf (pointer-chasing, DRAM-bound) must trigger real spans —
        guards against the evaluator silently never firing."""
        core = build_core(make_ino_config())
        # Explicit opt-in so the assertion holds under REPRO_NO_SKIP=1 too
        # (the env default only applies when fast_forward is None).
        core.run(_trace("mcf", 2000), warmup=500, fast_forward=True)
        assert core.ff_spans > 0
        assert core.ff_skipped_cycles > 0
