"""JSON config round-tripping."""

import json

import pytest

from repro.common.config_io import (
    ConfigError,
    core_config_from_dict,
    core_config_to_dict,
    dump_core_config,
    load_core_config,
)
from repro.common.params import make_casino_config


class TestFromDict:
    def test_base_only(self):
        cfg = core_config_from_dict({"base": "casino"})
        assert cfg == make_casino_config()

    def test_overrides_applied(self):
        cfg = core_config_from_dict({"base": "casino", "osca_entries": 128,
                                     "siq_size": 8})
        assert cfg.osca_entries == 128
        assert cfg.siq_size == 8
        assert cfg.iq_size == 12  # untouched

    def test_width_scaling(self):
        cfg = core_config_from_dict({"base": "ooo", "width": 4})
        assert cfg.width == 4
        assert cfg.rob_size == 128

    def test_missing_base_rejected(self):
        with pytest.raises(ConfigError, match="base"):
            core_config_from_dict({"width": 2})

    def test_unknown_base_rejected(self):
        with pytest.raises(ConfigError, match="unknown base"):
            core_config_from_dict({"base": "itanium"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown CoreConfig fields"):
            core_config_from_dict({"base": "ino", "turbo_boost": True})


class TestRoundTrip:
    def test_to_dict_minimal_for_default(self):
        out = core_config_to_dict(make_casino_config())
        assert out == {"base": "casino", "width": 2}

    def test_round_trip_preserves_overrides(self):
        import dataclasses
        original = dataclasses.replace(make_casino_config(),
                                       osca_entries=256, data_buffer_size=8)
        data = core_config_to_dict(original)
        rebuilt = core_config_from_dict(data)
        assert rebuilt == original

    def test_file_round_trip(self, tmp_path):
        import dataclasses
        path = tmp_path / "cfg.json"
        original = dataclasses.replace(make_casino_config(), sq_sb_size=16)
        dump_core_config(original, path)
        assert load_core_config(path) == original
        # File is valid, minimal JSON.
        data = json.loads(path.read_text())
        assert data["sq_sb_size"] == 16

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_core_config(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="JSON object"):
            load_core_config(path)

    def test_loaded_config_runs(self, tmp_path):
        from repro.cores import build_core
        from tests.util import independent_ops, with_pcs
        path = tmp_path / "cfg.json"
        path.write_text('{"base": "casino", "siq_size": 6, "iq_size": 10}')
        cfg = load_core_config(path)
        stats = build_core(cfg).run(with_pcs(independent_ops(30)))
        assert stats.committed == 30
