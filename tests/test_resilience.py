"""Resilient sweep harness: failure capture, retry-with-reseed, graceful
degradation, and checkpoint/resume."""

import dataclasses
import json

import pytest

from repro.common.params import MemoryConfig, make_ino_config, make_ooo_config
from repro.common.stats import partial_geomean
from repro.engine.core_base import SimulationError
from repro.engine.faults import Fault, FaultInjector
from repro.experiments.sweep import run_sweep
from repro.harness.resilience import (
    RESEED_STRIDE,
    FailureRecord,
    ResilientRunner,
    SweepCheckpoint,
    failure_report,
)
from repro.harness.runner import Runner
from repro.workloads.suite import get_profile

N = 2_000
WARMUP = 500


def small_cfg(make=make_ooo_config, **over):
    """A config with a watchdog small enough to fail fast under faults."""
    return dataclasses.replace(make(), deadlock_cycles=2_000, **over)


def deadlock_hook(when):
    """fault_hook injecting a wakeup-drop when ``when(cfg, profile)``."""
    def hook(cfg, profile):
        if when(cfg, profile):
            return FaultInjector([Fault("drop_wakeup", seq=600)])
        return None
    return hook


# -- ResilientRunner ----------------------------------------------------------

def test_retry_with_reseed_recovers():
    """First attempt fails (captured), the reseeded retry succeeds, and the
    result is re-badged under the original app name."""
    profile = get_profile("mcf")
    runner = ResilientRunner(
        n_instrs=N, warmup=WARMUP, retries=1,
        fault_hook=deadlock_hook(lambda cfg, p: p.seed == profile.seed))
    result = runner.run(small_cfg(), profile)
    assert not result.failed
    assert result.app == "mcf"
    assert result.ipc > 0
    assert len(runner.failures) == 1
    record = runner.failures[0]
    assert record.check == "deadlock_watchdog"
    assert record.app == "mcf"
    assert record.seed == profile.seed
    assert record.debug
    assert runner.excluded == set()
    # The retry really used a different trace seed.
    assert f"mcf:{profile.seed + RESEED_STRIDE}:{N}" in runner._traces


def test_permanent_failure_is_excluded():
    """When every attempt fails the app is excluded, a failed placeholder
    is cached, and the whole thing never raises."""
    profile = get_profile("mcf")
    runner = ResilientRunner(n_instrs=N, warmup=WARMUP, retries=1,
                             fault_hook=deadlock_hook(lambda cfg, p: True))
    result = runner.run(small_cfg(), profile)
    assert result.failed
    assert result.ipc == 0.0
    assert result.error
    assert runner.excluded == {"mcf"}
    assert len(runner.failures) == 2  # first attempt + one retry
    assert runner.failures[1].attempt == 1
    # Cached: a second call returns the placeholder without resimulating.
    assert runner.run(small_cfg(), profile) is result


def test_speedups_degrade_gracefully():
    """A figure-style speedup sweep with one permanently failing app
    completes, drops the app from every config, and reports it."""
    ooo = small_cfg()
    ino = small_cfg(make_ino_config)
    profiles = [get_profile("mcf"), get_profile("hmmer")]
    runner = ResilientRunner(
        n_instrs=N, warmup=WARMUP, retries=1,
        fault_hook=deadlock_hook(
            lambda cfg, p: cfg.name == ooo.name and p.name == "mcf"))
    speedups = runner.speedups([ooo], profiles, baseline=ino)
    assert set(speedups[ooo.name]) == {"hmmer"}
    assert speedups[ooo.name]["hmmer"] > 0
    # Partial aggregation still works on the surviving apps.
    value, dropped = partial_geomean(speedups[ooo.name].values())
    assert value > 0 and dropped == 0
    failures, excluded = runner.drain()
    assert excluded == ["mcf"]
    assert len(failures) == 2
    report = failure_report(failures, excluded)
    assert "mcf" in report and "deadlock_watchdog" in report
    # drain() cleared the ledgers for the next figure.
    assert runner.failures == [] and runner.excluded == set()


def test_failure_record_from_error():
    exc = SimulationError("boom", check="cycle_budget", cycle=99,
                          debug="rob=3")
    record = FailureRecord.from_error(small_cfg(), get_profile("mcf"), exc,
                                      attempt=2)
    assert record.check == "cycle_budget"
    assert record.cycle == 99
    assert record.debug == "rob=3"
    assert record.attempt == 2
    summary = record.summary()
    assert "mcf" in summary and "cycle 99" in summary and "retry #2" in summary


def test_runner_mem_cfg_in_cache_key():
    """Satellite fix: mutating the memory config must not serve results
    cached under the old hierarchy."""
    runner = Runner(n_instrs=N, warmup=WARMUP)
    cfg, profile = make_ooo_config(), get_profile("mcf")
    with_pf = runner.run(cfg, profile)
    key_before = runner._result_key(cfg, profile)
    runner.mem_cfg = MemoryConfig(prefetch_enabled=False)
    without_pf = runner.run(cfg, profile)
    assert runner._result_key(cfg, profile) != key_before
    assert with_pf is not without_pf


# -- SweepCheckpoint ----------------------------------------------------------

def test_checkpoint_roundtrip(tmp_path):
    path = tmp_path / "sweep.ckpt.json"
    ckpt = SweepCheckpoint(path)
    assert "Figure 6" not in ckpt
    ckpt.put("Figure 6", {"casino": 1.3}, exclusions=["mcf"],
             failures=["mcf: deadlock"])
    reloaded = SweepCheckpoint(path)
    assert "Figure 6" in reloaded
    entry = reloaded.get("Figure 6")
    assert entry["result"] == {"casino": 1.3}
    assert entry["exclusions"] == ["mcf"]
    assert entry["failures"] == ["mcf: deadlock"]
    assert reloaded.completed() == ["Figure 6"]
    reloaded.clear()
    assert not path.exists()
    assert SweepCheckpoint(path).completed() == []


def test_checkpoint_corrupt_file_restarts(tmp_path):
    path = tmp_path / "sweep.ckpt.json"
    path.write_text("{not json")
    assert SweepCheckpoint(path).completed() == []
    path.write_text(json.dumps([1, 2, 3]))  # wrong shape
    assert SweepCheckpoint(path).completed() == []


def test_checkpoint_write_is_atomic(tmp_path):
    path = tmp_path / "sweep.ckpt.json"
    ckpt = SweepCheckpoint(path)
    ckpt.put("A", {"x": 1})
    # No stray temp file, and the on-disk JSON is complete.
    assert list(tmp_path.iterdir()) == [path]
    assert json.loads(path.read_text())["A"]["result"] == {"x": 1}


# -- run_sweep ----------------------------------------------------------------

def _silent(_line):
    pass


def test_run_sweep_resumes_from_checkpoint(tmp_path):
    """Checkpointed figures are not recomputed on the second invocation."""
    calls = []

    def job(name, value):
        def fn(runner, profiles):
            calls.append(name)
            return {name: value}
        return (name, fn)

    jobs = [job("A", 1), job("B", 2)]
    runner = ResilientRunner(n_instrs=N, warmup=WARMUP)
    out = tmp_path / "out.txt"
    ckpt = SweepCheckpoint(tmp_path / "ck.json")
    results = run_sweep(runner, [], ckpt, out_path=str(out), jobs=jobs,
                        echo=_silent)
    assert calls == ["A", "B"]
    assert results == {"A": {"A": 1}, "B": {"B": 2}}
    assert out.read_text()  # the report was written
    # Second run: everything comes from the (re-loaded) checkpoint.
    calls.clear()
    results = run_sweep(runner, [], SweepCheckpoint(tmp_path / "ck.json"),
                        jobs=jobs, echo=_silent)
    assert calls == []
    assert results == {"A": {"A": 1}, "B": {"B": 2}}


def test_run_sweep_contains_figure_failures(tmp_path):
    """A figure driver that raises is reported and skipped; later figures
    still run and the broken one is NOT checkpointed (so a fixed rerun
    recomputes it)."""
    def boom(runner, profiles):
        raise RuntimeError("driver bug")

    def ok(runner, profiles):
        return {"v": 1}

    ckpt = SweepCheckpoint(tmp_path / "ck.json")
    runner = ResilientRunner(n_instrs=N, warmup=WARMUP)
    results = run_sweep(runner, [], ckpt, jobs=[("Bad", boom), ("Good", ok)],
                        echo=_silent)
    assert "Bad" not in results and "Bad" not in ckpt
    assert results["Good"] == {"v": 1} and "Good" in ckpt


def test_run_sweep_reports_exclusions(tmp_path):
    """An app that fails inside a figure ends up in that figure's
    checkpoint entry with a failure summary."""
    profile = get_profile("mcf")
    runner = ResilientRunner(n_instrs=N, warmup=WARMUP, retries=0,
                             fault_hook=deadlock_hook(lambda cfg, p: True))

    def fig(r, profiles):
        result = r.run(small_cfg(), profiles[0])
        return {"ipc": result.ipc}

    ckpt = SweepCheckpoint(tmp_path / "ck.json")
    lines = []
    results = run_sweep(runner, [profile], ckpt, jobs=[("Figure X", fig)],
                        echo=lines.append)
    assert results["Figure X"] == {"ipc": 0.0}
    entry = ckpt.get("Figure X")
    assert entry["exclusions"] == ["mcf"]
    assert any("deadlock_watchdog" in f for f in entry["failures"])
    assert any("excluded" in line for line in lines)
