"""Synthetic workload generator and the 25-app suite."""

import pytest

from repro.common.params import NUM_ARCH_REGS
from repro.workloads.generator import SyntheticWorkload, WorkloadProfile
from repro.workloads.suite import SPEC_FP, SPEC_INT, SUITE, get_profile, suite_profiles


class TestSuite:
    def test_25_applications(self):
        assert len(SPEC_INT) == 12
        assert len(SPEC_FP) == 13
        assert len(SUITE) == 25

    def test_paper_anchor_apps_present(self):
        for name in ("mcf", "h264ref", "cactusADM", "libquantum", "hmmer"):
            assert name in SUITE

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_subsets(self):
        assert len(suite_profiles("int")) == 12
        assert len(suite_profiles("fp")) == 13
        assert len(suite_profiles("all")) == 25
        with pytest.raises(ValueError):
            suite_profiles("bogus")

    def test_fp_apps_generate_fp_ops(self):
        trace = SyntheticWorkload(get_profile("bwaves")).generate(2000)
        assert any(d.op.is_fp for d in trace)

    def test_int_apps_generate_no_fp(self):
        trace = SyntheticWorkload(get_profile("mcf")).generate(2000)
        assert not any(d.op.is_fp for d in trace)


class TestGenerator:
    def test_deterministic(self):
        p = get_profile("gcc")
        a = SyntheticWorkload(p).generate(1500)
        b = SyntheticWorkload(p).generate(1500)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert (x.pc, x.op, x.srcs, x.dst, x.mem_addr, x.taken) == \
                   (y.pc, y.op, y.srcs, y.dst, y.mem_addr, y.taken)

    def test_different_seeds_differ(self):
        import dataclasses
        p = get_profile("gcc")
        q = dataclasses.replace(p, seed=p.seed + 1)
        a = SyntheticWorkload(p).generate(500)
        b = SyntheticWorkload(q).generate(500)
        assert any(x.pc != y.pc or x.mem_addr != y.mem_addr
                   for x, y in zip(a, b))

    def test_requested_length(self):
        trace = SyntheticWorkload(get_profile("sjeng")).generate(1234)
        assert len(trace) == 1234

    def test_registers_in_range(self):
        trace = SyntheticWorkload(get_profile("povray")).generate(3000)
        for d in trace:
            for r in d.srcs:
                assert 0 <= r < NUM_ARCH_REGS
            if d.dst is not None:
                assert 0 <= d.dst < NUM_ARCH_REGS

    def test_memory_ops_have_addresses(self):
        trace = SyntheticWorkload(get_profile("milc")).generate(3000)
        for d in trace:
            if d.is_mem:
                assert d.mem_addr is not None and d.mem_addr > 0
            else:
                assert d.mem_addr is None

    def test_branches_have_targets_when_taken(self):
        trace = SyntheticWorkload(get_profile("gobmk")).generate(3000)
        takens = [d for d in trace if d.is_branch and d.taken]
        assert takens
        assert all(d.target is not None for d in takens)

    def test_mem_fraction_roughly_matches_profile(self):
        p = get_profile("h264ref")
        trace = SyntheticWorkload(p).generate(12_000)
        mem = sum(1 for d in trace if d.is_mem)
        nonbranch = sum(1 for d in trace if not d.is_branch)
        assert abs(mem / nonbranch - p.frac_mem) < 0.15

    def test_pc_recurrence_for_predictors(self):
        """The static-loop structure repeats PCs (predictors need this)."""
        trace = SyntheticWorkload(get_profile("hmmer")).generate(6000)
        pcs = {d.pc for d in trace}
        assert len(pcs) < len(trace) / 4

    def test_alias_pairs_reuse_store_addresses(self):
        p = get_profile("h264ref")  # alias_frac = 0.30
        trace = SyntheticWorkload(p).generate(8000)
        store_addrs = set()
        aliased = 0
        for d in trace:
            if d.is_store:
                store_addrs.add(d.mem_addr)
            elif d.is_load and d.mem_addr in store_addrs:
                aliased += 1
        assert aliased > 20

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", frac_stream=0.9, frac_random=0.9,
                            frac_chase=0.0)

    def test_chase_streams_serialise_addresses(self):
        p = get_profile("mcf")
        workload = SyntheticWorkload(p)
        trace = workload.generate(4000)
        # Chase loads use the same register as src and dst.
        chase = [d for d in trace
                 if d.is_load and d.dst is not None and d.dst in d.srcs]
        assert chase
