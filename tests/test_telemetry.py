"""Telemetry plane: registry concurrency, lossless merge, Prometheus
text, span lifecycle across crash/restart, and bit-identical results
with telemetry on or off."""

import json
import logging
import threading
import time

import pytest

from repro.common.params import make_casino_config, make_ino_config
from repro.obs.telemetry import (
    MetricsRegistry,
    SpanLog,
    TERMINAL_SPAN_EVENTS,
    JsonLineFormatter,
    fold_spans,
    merge_snapshots,
    new_trace_id,
    render_prometheus,
)
from repro.service.chaos import ChaosFabric, assert_invariant, serial_digests
from repro.service.jobs import JobSpec, execute_job
from repro.service.pool import SimulationPool
from repro.service.store import ResultStore
from repro.workloads.suite import SUITE

N, WARMUP = 1200, 200


def _specs(pairs, n=N, warmup=WARMUP):
    factories = {"ino": make_ino_config, "casino": make_casino_config}
    return [JobSpec.make(factories[core](), SUITE[app],
                         n_instrs=n, warmup=warmup)
            for core, app in pairs]


def _series(snapshot, name, **labels):
    for entry in snapshot["series"]:
        if entry["name"] == name and entry["labels"] == {
                k: str(v) for k, v in labels.items()}:
            return entry
    raise AssertionError(f"no series {name} {labels} in {snapshot}")


class TestRegistryConcurrency:
    def test_concurrent_increments_lossless(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2_000

        def hammer(i):
            shared = registry.counter("repro_test_total")
            mine = registry.counter("repro_test_by_thread_total", thread=i)
            for _ in range(per_thread):
                shared.inc()
                mine.inc()

        workers = [threading.Thread(target=hammer, args=(i,))
                   for i in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        snap = registry.snapshot()
        assert _series(snap, "repro_test_total")["value"] == \
            threads * per_thread
        for i in range(threads):
            assert _series(snap, "repro_test_by_thread_total",
                           thread=i)["value"] == per_thread

    def test_histogram_bucket_counts_match_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_seconds",
                                  buckets=(0.01, 0.1, 1.0))
        observations = 0

        def observe(seed):
            nonlocal observations
            value = 0.0003
            for _ in range(1_500):
                value = (value * 31 + seed * 0.0107) % 2.0
                hist.observe(value)

        workers = [threading.Thread(target=observe, args=(i + 1,))
                   for i in range(6)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        entry = _series(registry.snapshot(), "repro_test_seconds")
        # invariant: every observation lands in exactly one bucket
        assert sum(entry["counts"]) == entry["count"] == 6 * 1_500
        assert len(entry["counts"]) == len(entry["buckets"]) + 1

    def test_snapshot_is_consistent_under_writes(self):
        """A snapshot taken mid-hammer never shows a torn series."""
        registry = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            a = registry.counter("repro_test_a_total")
            b = registry.counter("repro_test_b_total")
            while not stop.is_set():
                a.inc()
                b.inc()  # maintained invariant: a >= b, a - b <= writers

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for t in workers:
            t.start()
        try:
            for _ in range(50):
                snap = registry.snapshot()
                a = _series(snap, "repro_test_a_total")["value"]
                b = _series(snap, "repro_test_b_total")["value"]
                assert 0 <= a - b <= len(workers)
        finally:
            stop.set()
            for t in workers:
                t.join()

    def test_kind_is_sticky_per_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")


class TestMerge:
    def test_merge_of_cumulative_worker_snapshots_is_lossless(self):
        """Per-worker registries are cumulative, so summing the latest
        snapshot from each worker counts every increment exactly once —
        the parent-side merge model for pool telemetry."""
        workers = [MetricsRegistry() for _ in range(3)]
        for i, registry in enumerate(workers):
            for _ in range((i + 1) * 10):
                registry.counter("repro_jobs_total", outcome="ok").inc()
                registry.histogram("repro_sim_seconds",
                                   buckets=(0.1, 1.0)).observe(0.05 * (i + 1))
        merged = merge_snapshots([r.snapshot() for r in workers])
        assert _series(merged, "repro_jobs_total",
                       outcome="ok")["value"] == 60
        hist = _series(merged, "repro_sim_seconds")
        assert hist["count"] == 60 and sum(hist["counts"]) == 60

    def test_merge_skips_missing_workers(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(5)
        merged = merge_snapshots([None, registry.snapshot(), {}])
        assert _series(merged, "repro_test_total")["value"] == 5

    def test_histogram_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("repro_test_seconds", buckets=(0.1, 1.0)).observe(0.5)
        b.histogram("repro_test_seconds", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])


def _parse_prometheus(text):
    """Mini exposition-format parser: {family: {"type", "samples"}}.

    Raises on malformed lines, duplicate TYPE headers, or samples for an
    undeclared family — the validity contract ``GET /metrics`` promises.
    """
    families = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = {"type": kind, "samples": []}
            continue
        assert not line.startswith("#"), line
        head, _, value = line.rpartition(" ")
        float(value)  # must parse
        name = head.split("{", 1)[0]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                family = name[:-len(suffix)]
        assert family in families, f"sample for undeclared family: {line}"
        families[family]["samples"].append((head, float(value)))
    return families


class TestPrometheusText:
    def test_render_is_valid_exposition_text(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs by status",
                         status="done").inc(3)
        registry.counter("repro_jobs_total", status="failed").inc()
        registry.gauge("repro_queue_depth", "Queued jobs").set(7)
        hist = registry.histogram("repro_wait_seconds", "Queue wait",
                                  buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        families = _parse_prometheus(text)
        assert families["repro_jobs_total"]["type"] == "counter"
        assert families["repro_queue_depth"]["type"] == "gauge"
        assert families["repro_wait_seconds"]["type"] == "histogram"
        samples = dict(families["repro_wait_seconds"]["samples"])
        # cumulative buckets: monotone, +Inf equals _count
        assert samples['repro_wait_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_wait_seconds_bucket{le="1"}'] == 2
        assert samples['repro_wait_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_wait_seconds_count"] == 3
        assert samples["repro_wait_seconds_sum"] == pytest.approx(5.55)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", error='say "hi"\n').inc()
        text = render_prometheus(registry.snapshot())
        assert r'error="say \"hi\"\n"' in text


class TestSpanLog:
    def test_second_terminal_event_suppressed(self):
        log = SpanLog()
        trace = new_trace_id()
        assert log.append("job-1", "submitted", trace=trace) is not None
        assert log.append("job-1", "completed") is not None
        assert log.append("job-1", "failed") is None        # suppressed
        span = log.trace("job-1")
        assert span["complete"] is True
        terminals = [e for e in span["events"]
                     if e["ev"] in TERMINAL_SPAN_EVENTS]
        assert len(terminals) == 1 and terminals[0]["ev"] == "completed"

    def test_fold_spans_synthesises_lifecycle_events(self):
        records = [
            {"t": "submitted", "job": "job-1", "ts": 10.0, "trace": "tr-1",
             "priority": 100},
            {"t": "leased", "job": "job-1", "ts": 11.0, "attempt": 1},
            {"t": "span", "job": "job-1", "ts": 11.5, "ev": "started",
             "pid": 42},
            {"t": "done", "job": "job-1", "ts": 12.0},
            {"t": "submitted", "job": "job-2", "ts": 13.0, "trace": "tr-2",
             "cached": True},
        ]
        log = fold_spans(records)
        one = log.trace("job-1")
        assert one["trace"] == "tr-1" and one["complete"]
        assert [e["ev"] for e in one["events"]] == \
            ["submitted", "journaled", "leased", "started", "completed"]
        two = log.trace("job-2")
        assert [e["ev"] for e in two["events"]] == \
            ["submitted", "journaled", "store_hit", "completed"]

    def test_fold_spans_skips_schema1_records(self):
        """Old journals (no ``ts`` on lifecycle records) stay readable
        but contribute no span history."""
        log = fold_spans([{"t": "submitted", "job": "job-1"},
                          {"t": "done", "job": "job-1"}])
        assert len(log) == 0

    def test_replaying_the_same_records_adds_no_terminals(self):
        records = [{"t": "submitted", "job": "job-1", "ts": 1.0,
                    "trace": "tr", "cached": True}]
        log = fold_spans(records)
        log = fold_spans(records, log)  # crash-recovery double replay
        terminals = [e for e in log.trace("job-1")["events"]
                     if e["ev"] in TERMINAL_SPAN_EVENTS]
        assert len(terminals) == 1


class TestJsonLogging:
    def test_formatter_emits_one_json_object_with_fields(self):
        record = logging.LogRecord(
            name="repro.service.server", level=logging.INFO, pathname=__file__,
            lineno=1, msg="service.terminal", args=(), exc_info=None)
        record.fields = {"job": "job-1", "trace": "tr-1", "status": "done"}
        doc = json.loads(JsonLineFormatter().format(record))
        assert doc["event"] == "service.terminal"
        assert doc["logger"] == "repro.service.server"
        assert doc["job"] == "job-1" and doc["trace"] == "tr-1"
        assert doc["level"] == "info" and doc["ts"] > 0


class TestBitIdentity:
    def test_records_identical_with_telemetry_on_or_off(self):
        """Acceptance: the telemetry plane observes the fabric, never the
        simulation — result records (counter digests included) are
        byte-identical with telemetry enabled or disabled."""
        specs = _specs([("ino", "hmmer"), ("casino", "mcf")])
        serial = [execute_job(spec) for spec in specs]
        with SimulationPool(n_workers=2, telemetry=True) as pool_on:
            with_telemetry = pool_on.run_batch(specs)
            worker_snaps = pool_on.telemetry_snapshots()
        with SimulationPool(n_workers=2, telemetry=False) as pool_off:
            without_telemetry = pool_off.run_batch(specs)
        for ser, on, off in zip(serial, with_telemetry, without_telemetry):
            assert json.dumps(ser, sort_keys=True) == \
                json.dumps(on, sort_keys=True) == \
                json.dumps(off, sort_keys=True)
            assert ser["manifest"]["counter_digest"] == \
                on["manifest"]["counter_digest"]
        # and the workers did report: every job shows up in the merge
        merged = merge_snapshots(worker_snaps)
        assert _series(merged, "repro_worker_jobs_total",
                       outcome="ok")["value"] == len(specs)


class TestCrashRecoverySpans:
    def test_crash_mid_batch_replays_spans_without_duplicate_terminals(
            self, tmp_path):
        """Acceptance: after a crash + restart, every job's span is
        rebuilt from the journal, ends complete, and holds exactly one
        terminal event — replay never doubles a terminal transition."""
        specs = _specs([("ino", "hmmer"), ("casino", "hmmer"),
                        ("ino", "mcf")])
        expected = serial_digests(specs)
        fabric = ChaosFabric(tmp_path, workers=2, seed=808)
        fabric.start()
        try:
            fabric.submit(specs)
            deadline = time.monotonic() + 120.0
            while len(ResultStore(tmp_path / "store")) < 1:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            fabric.crash()

            fabric.start()
            fabric.ensure_submitted(specs)
            entries = fabric.wait_all(timeout_s=300.0)
            traces = {job_id: fabric.service.job_trace(job_id)
                      for job_id in entries}
        finally:
            fabric.stop()
        assert_invariant(entries, fabric.store, specs, expected)
        assert len(traces) == len(specs)
        for job_id, span in traces.items():
            assert span is not None, job_id
            assert span["complete"] is True, span
            events = [e["ev"] for e in span["events"]]
            assert events[0] == "submitted", events
            terminals = [ev for ev in events if ev in TERMINAL_SPAN_EVENTS]
            assert terminals == ["completed"], events

    def test_recovered_store_dedup_span_is_terminal_and_cached(self,
                                                               tmp_path):
        """A job whose result landed before the crash is cache-served on
        recovery; its replayed span closes with a single recovered
        ``completed`` event instead of re-running."""
        specs = _specs([("ino", "hmmer")])
        fabric = ChaosFabric(tmp_path, workers=1, seed=909)
        fabric.start()
        try:
            (job_id,) = fabric.submit(specs)
            fabric.wait_all(timeout_s=300.0)
            fabric.restart()
            span = fabric.service.job_trace(job_id)
        finally:
            fabric.stop()
        assert span["complete"] is True
        terminals = [e for e in span["events"]
                     if e["ev"] in TERMINAL_SPAN_EVENTS]
        assert len(terminals) == 1
