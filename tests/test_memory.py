"""Cache, MSHR, DRAM and prefetcher behaviour."""

import pytest

from repro.common.params import CacheConfig, DramConfig, MemoryConfig
from repro.common.stats import Stats
from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher


def flat_memory(latency=100):
    """A constant-latency backing store."""
    def access(addr, cycle):
        return latency
    return access


class TestCache:
    def make(self, **kw):
        cfg = CacheConfig(size_kib=kw.pop("size_kib", 1), assoc=kw.pop("assoc", 2),
                          line_bytes=64, latency=kw.pop("latency", 4),
                          mshrs=kw.pop("mshrs", 4))
        return Cache("l1d", cfg, flat_memory(kw.pop("miss", 100)), Stats())

    def test_miss_then_hit(self):
        cache = self.make()
        assert cache.access(0x1000, 0) > 4
        assert cache.access(0x1000, 1000) == 4
        assert cache.stats.get("l1d_hits") == 1
        assert cache.stats.get("l1d_misses") == 1

    def test_same_line_different_words_hit(self):
        cache = self.make()
        cache.access(0x1000, 0)
        assert cache.access(0x1038, 1000) == 4

    def test_lru_eviction(self):
        cache = self.make()  # 1 KiB / 2-way / 64B = 8 sets
        # Three lines in the same set: the first touched gets evicted.
        a, b, c = 0x0, 0x0 + 8 * 64, 0x0 + 16 * 64
        for addr in (a, b, c):
            cache.access(addr, 0)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_lru_refresh_protects_line(self):
        cache = self.make()
        a, b, c = 0x0, 0x0 + 8 * 64, 0x0 + 16 * 64
        cache.access(a, 0)
        cache.access(b, 1000)
        cache.access(a, 2000)  # refresh a; b becomes LRU
        cache.access(c, 3000)
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_mshr_merge_pays_residual(self):
        cache = self.make(miss=100)
        first = cache.access(0x1000, 0)
        # Second access to the same line 10 cycles later merges.
        second = cache.access(0x1000, 10)
        assert second < first
        assert second == (first - 10) + 4
        assert cache.stats.get("l1d_mshr_merges") == 1

    def test_mshr_backpressure(self):
        cache = self.make(miss=100, mshrs=2)
        cache.access(0x0, 0)
        cache.access(0x4000, 0)
        # Third distinct miss at cycle 0 waits for a free MSHR.
        lat = cache.access(0x8000, 0)
        assert lat > 104
        assert cache.stats.get("l1d_mshr_stalls") == 1

    def test_prefetch_install(self):
        cache = self.make()
        cache.install_prefetch(0x2000, fill_at=50)
        # Demand access at cycle 10 pays the residual fill, not a miss.
        lat = cache.access(0x2000, 10)
        assert lat == (50 - 10) + 4
        assert cache.stats.get("l1d_misses") == 0


class TestDram:
    def test_row_hit_cheaper_than_conflict(self):
        dram = Dram(DramConfig(), Stats())
        first = dram.access(0x0, 0)
        hit = dram.access(0x40, first + 10)   # hmm: next line maps elsewhere
        # Use the same line to guarantee the same bank+row.
        same = dram.access(0x0, 10_000)
        far = dram.access(0x100_0000, 20_000)
        assert same <= first
        assert dram.stats.get("dram_row_hits") >= 1

    def test_bank_busy_serialises(self):
        dram = Dram(DramConfig(), Stats())
        a = dram.access(0x0, 0)
        b = dram.access(0x0, 0)  # same bank, same cycle: queues behind
        assert b > a

    def test_reset(self):
        dram = Dram(DramConfig(), Stats())
        dram.access(0x0, 0)
        dram.reset()
        assert all(b.open_row is None for b in dram.banks)


class TestPrefetcher:
    def test_stream_detected_and_filled(self):
        stats = Stats()
        mem = MemoryConfig()
        hier = MemoryHierarchy(mem, stats)
        # Sequential misses through the L2 train the prefetcher.
        for i in range(8):
            hier.load(0x10_0000 + 64 * i, i * 200)
        assert stats.get("prefetches_issued") > 0

    def test_prefetch_covers_future_lines(self):
        stats = Stats()
        hier = MemoryHierarchy(MemoryConfig(), stats)
        cycle = 0
        for i in range(32):
            cycle += hier.load(0x20_0000 + 64 * i, cycle)
        # Later accesses should be covered: L2 demand misses << 32.
        assert stats.get("l2_misses") < 20

    def test_random_pattern_trains_nothing(self):
        stats = Stats()
        hier = MemoryHierarchy(MemoryConfig(), stats)
        addrs = [0x30_0000, 0x37_1040, 0x32_20C0, 0x3F_3000, 0x31_0880]
        for i, a in enumerate(addrs):
            hier.load(a, i * 300)
        assert stats.get("prefetches_issued") == 0

    def test_disabled_prefetcher(self):
        cfg = MemoryConfig(prefetch_enabled=False)
        hier = MemoryHierarchy(cfg, Stats())
        assert hier.prefetcher is None
        for i in range(8):
            hier.load(0x10_0000 + 64 * i, i * 200)
        assert hier.stats.get("prefetches_issued") == 0


class TestHierarchy:
    def test_l1_hit_latency(self):
        hier = MemoryHierarchy(MemoryConfig(), Stats())
        hier.load(0x1000, 0)
        assert hier.load(0x1000, 1000) == 4

    def test_ifetch_separate_from_data(self):
        stats = Stats()
        hier = MemoryHierarchy(MemoryConfig(), stats)
        hier.ifetch(0x1000, 0)
        hier.load(0x1000, 0)
        assert stats.get("l1i_accesses") == 1
        assert stats.get("l1d_accesses") == 1

    def test_l2_shared_between_i_and_d(self):
        stats = Stats()
        hier = MemoryHierarchy(MemoryConfig(), stats)
        hier.ifetch(0x9000, 0)        # fills the line into L2
        lat = hier.load(0x9000, 5000)  # L1D miss, L2 hit
        assert lat < 4 + 11 + 50      # far below a DRAM trip
        assert stats.get("l2_hits") >= 1
