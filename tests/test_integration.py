"""Cross-model integration: the paper's headline orderings must hold on a
representative workload mix (small traces, so these stay fast)."""

import pytest

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.common.stats import geomean
from repro.cores import build_core
from repro.workloads import get_profile, suite_profiles
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import kernel_trace

APPS = ("hmmer", "mcf", "cactusADM", "h264ref", "milc")
N = 8000
WARM = 2000


@pytest.fixture(scope="module")
def suite_ipcs():
    traces = {a: SyntheticWorkload(get_profile(a)).generate(N) for a in APPS}
    cfgs = [make_ino_config(), make_lsc_config(), make_freeway_config(),
            make_casino_config(), make_ooo_config(),
            make_specino_config(2, 1, True)]
    out = {}
    for cfg in cfgs:
        core = build_core(cfg)
        out[cfg.name] = {a: core.run(list(t), warmup=WARM).ipc
                         for a, t in traces.items()}
    return out


def _gm(ipcs, name, base="ino"):
    return geomean(ipcs[name][a] / ipcs[base][a] for a in APPS)


class TestFigure6Orderings:
    def test_everything_beats_ino(self, suite_ipcs):
        for name in ("lsc", "freeway", "casino", "ooo"):
            assert _gm(suite_ipcs, name) > 1.05, name

    def test_casino_beats_slice_cores(self, suite_ipcs):
        assert _gm(suite_ipcs, "casino") > _gm(suite_ipcs, "freeway")
        assert _gm(suite_ipcs, "casino") > _gm(suite_ipcs, "lsc")

    def test_freeway_at_least_lsc(self, suite_ipcs):
        assert _gm(suite_ipcs, "freeway") >= _gm(suite_ipcs, "lsc") * 0.98

    def test_ooo_is_the_ceiling(self, suite_ipcs):
        assert _gm(suite_ipcs, "ooo") > _gm(suite_ipcs, "casino")

    def test_casino_within_reach_of_ooo(self, suite_ipcs):
        """Paper: within ~10 points; we allow a wider band for the small
        trace lengths used in tests."""
        assert _gm(suite_ipcs, "casino") > 0.70 * _gm(suite_ipcs, "ooo")

    def test_specino_limit_above_casino_family(self, suite_ipcs):
        name = make_specino_config(2, 1, True).name
        assert _gm(suite_ipcs, name) > _gm(suite_ipcs, "freeway")


class TestKernels:
    @pytest.mark.parametrize("kernel,kwargs", [
        ("daxpy", dict(n=256, passes=3)),
        ("pointer_chase", dict(nodes=128, hops=512)),
        ("reduction", dict(n=512)),
        ("histogram", dict(n=512, buckets=32)),
        ("stencil3", dict(n=512)),
    ])
    def test_all_cores_run_all_kernels(self, kernel, kwargs):
        trace = kernel_trace(kernel, **kwargs)
        for cfg in (make_ino_config(), make_casino_config(),
                    make_ooo_config(), make_lsc_config(),
                    make_freeway_config()):
            stats = build_core(cfg).run(list(trace))
            assert stats.committed == len(trace), (kernel, cfg.name)

    def test_pointer_chase_is_serial_everywhere(self):
        """No scheduler can beat a dependent miss chain: CASINO and OoO
        gain little over InO on pointer chasing."""
        trace = kernel_trace("pointer_chase", nodes=256, hops=1024)
        ino = build_core(make_ino_config()).run(list(trace), warmup=256)
        ooo = build_core(make_ooo_config()).run(list(trace), warmup=256)
        assert ooo.ipc < ino.ipc * 1.35

    def test_daxpy_rewards_ooo_scheduling(self):
        trace = kernel_trace("daxpy", n=512, passes=4)
        ino = build_core(make_ino_config()).run(list(trace), warmup=500)
        cas = build_core(make_casino_config()).run(list(trace), warmup=500)
        ooo = build_core(make_ooo_config()).run(list(trace), warmup=500)
        assert cas.ipc > ino.ipc * 1.2
        assert ooo.ipc > ino.ipc * 1.5


class TestStatsConsistency:
    def test_issue_equals_commit_plus_squashed_work(self):
        trace = SyntheticWorkload(get_profile("h264ref")).generate(4000)
        stats = build_core(make_casino_config()).run(trace)
        assert stats.get("issued") >= stats.committed
        assert stats.committed == 4000

    def test_warmup_subtraction(self):
        trace = SyntheticWorkload(get_profile("gcc")).generate(4000)
        core = build_core(make_ino_config())
        warm = core.run(list(trace), warmup=1000)
        assert warm.committed == 3000
        cold = build_core(make_ino_config()).run(list(trace))
        assert cold.committed == 4000
        assert warm.cycles < cold.cycles
