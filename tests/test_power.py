"""Power/area model: scaling laws, inventories and the paper's orderings."""

import dataclasses

import pytest

from repro.common.params import (
    DISAMBIG_NOLQ,
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.common.stats import Stats
from repro.power.accounting import build_power_model
from repro.power.structures import cam_search_pj, ram_access_pj, sram_area_mm2


class TestScalingLaws:
    def test_ram_energy_grows_with_entries(self):
        assert ram_access_pj(256, 64) > ram_access_pj(16, 64)

    def test_ram_energy_grows_with_ports(self):
        assert ram_access_pj(64, 64, 6) > ram_access_pj(64, 64, 1)

    def test_cam_energy_linear_in_entries(self):
        small = cam_search_pj(8, 44)
        large = cam_search_pj(32, 44)
        assert large > small
        # The entry-dependent part scales 4x.
        assert (large - small) == pytest.approx(3 * (small - 0.5) * 1.0, rel=0.01) \
            or large > 2 * small - 1.0

    def test_area_cam_premium(self):
        assert sram_area_mm2(16, 64, cam=True) > sram_area_mm2(16, 64)

    def test_area_port_superlinear(self):
        one = sram_area_mm2(64, 64, 1)
        four = sram_area_mm2(64, 64, 4)
        assert four > 4 * one


class TestInventories:
    def test_every_kind_builds(self):
        for cfg in (make_ino_config(), make_ooo_config(), make_casino_config(),
                    make_lsc_config(), make_freeway_config(),
                    make_specino_config()):
            model = build_power_model(cfg)
            assert model.area_mm2() > 0
            assert model.dynamic_items

    def test_area_ordering_matches_paper(self):
        """Figure 9a: InO < CASINO (~+5%) < OoO (~+35%)."""
        ino = build_power_model(make_ino_config()).area_mm2()
        cas = build_power_model(make_casino_config()).area_mm2()
        ooo = build_power_model(make_ooo_config()).area_mm2()
        assert ino < cas < ooo
        assert 1.02 < cas / ino < 1.12
        assert 1.20 < ooo / ino < 1.55

    def test_casino_has_no_lq(self):
        model = build_power_model(make_casino_config())
        names = [n for _, n, _ in model.area_items]
        assert "lq" not in names
        assert "osca" in names

    def test_ooo_nolq_drops_lq(self):
        cfg = dataclasses.replace(make_ooo_config(), disambiguation=DISAMBIG_NOLQ)
        model = build_power_model(cfg)
        names = [n for _, n, _ in model.area_items]
        assert "lq" not in names

    def test_wider_casino_bigger(self):
        a2 = build_power_model(make_casino_config(2)).area_mm2()
        a4 = build_power_model(make_casino_config(4)).area_mm2()
        assert a4 > a2


class TestEnergyReport:
    def _stats(self, cycles=1000, committed=800):
        s = Stats()
        s.add("cycles", cycles)
        s.add("committed", committed)
        s.add("issued", committed)
        s.add("l1d_accesses", 300)
        s.add("fetched", committed)
        return s

    def test_total_is_dynamic_plus_leakage(self):
        model = build_power_model(make_ino_config())
        report = model.energy(self._stats())
        assert report.total_j == pytest.approx(
            report.dynamic_j + report.leakage_j)
        assert report.leakage_j > 0

    def test_leakage_scales_with_cycles(self):
        model = build_power_model(make_ino_config())
        short = model.energy(self._stats(cycles=1000))
        long = model.energy(self._stats(cycles=2000))
        assert long.leakage_j == pytest.approx(2 * short.leakage_j)

    def test_groups_sum_to_total(self):
        model = build_power_model(make_ooo_config())
        report = model.energy(self._stats())
        assert sum(report.by_group.values()) == pytest.approx(report.total_j)

    def test_epi(self):
        model = build_power_model(make_ino_config())
        report = model.energy(self._stats(committed=800))
        assert report.epi_nj == pytest.approx(report.total_j / 800 * 1e9)

    def test_efficiency_positive(self):
        model = build_power_model(make_ino_config())
        assert model.energy(self._stats()).efficiency() > 0

    def test_empty_run_is_safe(self):
        model = build_power_model(make_ino_config())
        report = model.energy(Stats())
        assert report.total_j == 0.0
        assert report.epi_nj == 0.0
        assert report.efficiency() == 0.0


class TestEndToEndEnergy:
    def test_energy_ordering_on_workload(self):
        """Figure 9b ordering on one mid-weight app: InO < CASINO < OoO."""
        from repro.harness.runner import Runner
        from repro.workloads import get_profile
        runner = Runner(n_instrs=8000, warmup=2000)
        profile = get_profile("milc")
        e = {}
        for cfg in (make_ino_config(), make_casino_config(), make_ooo_config()):
            e[cfg.name] = runner.run(cfg, profile).energy.total_j
        assert e["ino"] < e["casino"] < e["ooo"]
