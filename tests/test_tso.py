"""Load->load ordering via cache-line sentinels (Section III-C4, TSO).

A speculatively-issued CASINO load pins its cache line; the hierarchy
withholds invalidation acknowledgements from (simulated) remote stores
until the load commits — enforcing total store ordering without LQ
searches.
"""

import pytest

from repro.common.params import MemoryConfig, make_casino_config
from repro.common.stats import Stats
from repro.cores import build_core
from repro.memory.hierarchy import MemoryHierarchy
from tests.util import alu, div, load, run_trace, with_pcs


class TestLineSentinels:
    def test_pin_blocks_invalidation(self):
        hier = MemoryHierarchy(MemoryConfig(), Stats())
        hier.load(0x4000, 0)
        hier.add_line_sentinel(0x4000)
        assert hier.invalidate(0x4000, 10) is False
        assert hier.stats.get("invalidation_nacks") == 1

    def test_unpin_allows_invalidation_and_evicts(self):
        hier = MemoryHierarchy(MemoryConfig(), Stats())
        hier.load(0x4000, 0)
        hier.add_line_sentinel(0x4000)
        hier.remove_line_sentinel(0x4000)
        assert hier.invalidate(0x4000, 10) is True
        assert not hier.l1d.contains(0x4000)

    def test_pins_are_counted(self):
        hier = MemoryHierarchy(MemoryConfig(), Stats())
        hier.add_line_sentinel(0x4000)
        hier.add_line_sentinel(0x4008)  # same line, second load
        hier.remove_line_sentinel(0x4000)
        assert hier.invalidate(0x4000, 0) is False  # still one pin
        hier.remove_line_sentinel(0x4008)
        assert hier.invalidate(0x4000, 0) is True

    def test_unpinned_line_acks_immediately(self):
        hier = MemoryHierarchy(MemoryConfig(), Stats())
        assert hier.invalidate(0x9000, 0) is True


class TestCasinoTso:
    def test_speculative_load_pins_until_commit(self):
        """While a speculative load is in flight its line is pinned; after
        the run everything is unpinned."""
        trace = [div(1), alu(2, (1,)), load(3, 15, 0x4000)]
        stats, core = run_trace(make_casino_config(), trace)
        assert not core.hier.line_sentinels
        assert not core.lsu._line_pins

    def test_squash_unpins(self):
        from tests.util import store
        trace = ([div(1), store(1, 14, 0xC000), load(2, 15, 0xC000),
                  load(3, 15, 0x5000)]
                 + [alu(4 + i % 4, (2,)) for i in range(6)])
        import dataclasses
        cfg = dataclasses.replace(make_casino_config(),
                                  disambiguation="nolq")
        stats, core = run_trace(cfg, trace)
        assert stats.get("squashes") >= 1
        assert not core.hier.line_sentinels  # unwound across the squash

    def test_mid_flight_pin_observable(self):
        """Drive the core manually and check the pin exists while the
        speculative load is outstanding."""
        core = build_core(make_casino_config())
        trace = with_pcs([div(1), alu(2, (1,)), load(3, 15, 0x4000)])
        core.reset(trace)
        pinned_during_flight = False
        for cycle in range(400):
            core.cycle = cycle
            core.fu.reset()
            core._step(cycle)
            core.fetch.tick(cycle)
            if core.hier.line_sentinels:
                pinned_during_flight = True
            if core.fetch.drained and core.pipeline_empty():
                break
        assert pinned_during_flight
        assert not core.hier.line_sentinels
