"""Result export and bar rendering."""

import json

import pytest

from repro.harness.export import jsonable, read_json, write_json
from repro.harness.tables import format_bars


class TestJsonable:
    def test_tuple_keys_flattened(self):
        out = jsonable({("casino", 4): {"perf": 1.9}})
        assert out == {"casino/4": {"perf": 1.9}}

    def test_int_keys_stringified(self):
        assert jsonable({12: 1.0}) == {"12": 1.0}

    def test_nested_lists(self):
        assert jsonable([(1, 2.5), "x"]) == [[1, 2.5], "x"]

    def test_passthrough_scalars(self):
        assert jsonable({"a": True, "b": None, "c": 3}) == \
            {"a": True, "b": None, "c": 3}

    def test_file_round_trip(self, tmp_path):
        data = {("ooo", 2): {"per": 0.86}, "apps": [1, 2, 3]}
        path = tmp_path / "out.json"
        write_json(data, path)
        loaded = read_json(path)
        assert loaded["ooo/2"]["per"] == 0.86
        assert loaded["apps"] == [1, 2, 3]
        json.loads(path.read_text())  # valid JSON on disk


class TestBars:
    def test_bars_scale_to_peak(self):
        text = format_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert format_bars({}) == "(no data)"

    def test_labels_aligned(self):
        text = format_bars({"short": 1.0, "much-longer-label": 1.5})
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")
