"""Trace characterisation, and suite-profile validation through it."""

import pytest

from repro.workloads import get_profile
from repro.workloads.characterize import TraceProfile, characterize, compare
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import kernel_trace
from tests.util import alu, load, store, with_pcs


class TestBasicMeasures:
    def test_empty_trace(self):
        profile = characterize([])
        assert profile.n_instrs == 0

    def test_mix_counting(self):
        trace = with_pcs([load(1, 15, 0x100), store(15, 14, 0x200),
                          alu(2), alu(3)])
        profile = characterize(trace)
        assert profile.frac_loads == 0.25
        assert profile.frac_stores == 0.25

    def test_dependence_distance(self):
        trace = with_pcs([alu(1), alu(2), alu(3, (1,))])
        profile = characterize(trace)
        assert profile.mean_dep_distance == 2.0

    def test_stale_sources_counted(self):
        # r9 never written: the source counts as ready-at-rename.
        trace = with_pcs([alu(1, (9,)), alu(2, (1,))])
        profile = characterize(trace, ready_horizon=8)
        assert profile.frac_ready_at_rename == 0.5

    def test_footprint_and_reuse(self):
        trace = with_pcs([load(1, 15, 0x100), load(2, 15, 0x100),
                          load(3, 15, 0x4100)])
        profile = characterize(trace)
        assert profile.unique_lines == 2
        assert profile.line_reuse == pytest.approx(1.5)

    def test_alias_distance(self):
        trace = with_pcs([store(15, 14, 0x300), alu(1), alu(2),
                          load(3, 15, 0x300)])
        profile = characterize(trace)
        assert profile.alias_pairs == 1
        assert profile.mean_alias_distance == 3.0

    def test_compare(self):
        a = characterize(with_pcs([load(1, 15, 0x100), alu(2)]))
        b = characterize(with_pcs([load(1, 15, 0x100), load(2, 15, 0x140),
                                   alu(3), alu(4)]))
        diff = compare(a, b)
        assert "frac_loads" in diff


class TestSuiteValidation:
    """The synthetic suite must show the qualitative separations the paper
    relies on — these are the workload-model regression tests."""

    def _profile(self, name, n=8000):
        return characterize(SyntheticWorkload(get_profile(name)).generate(n))

    def test_mcf_has_larger_footprint_and_less_reuse_than_hmmer(self):
        mcf, hmmer = self._profile("mcf"), self._profile("hmmer")
        assert mcf.footprint_bytes > 1.5 * hmmer.footprint_bytes
        assert mcf.line_reuse < hmmer.line_reuse

    def test_h264ref_aliases_most(self):
        h264 = self._profile("h264ref")
        quiet = self._profile("libquantum")
        assert h264.alias_pairs > 3 * max(1, quiet.alias_pairs)

    def test_fp_apps_have_fp(self):
        assert self._profile("bwaves").frac_fp > 0.2
        assert self._profile("gcc").frac_fp == 0.0

    def test_stale_operands_majority(self):
        """CASINO's speculative issue depends on most operands being ready
        at rename; every suite app must provide that."""
        for app in ("hmmer", "mcf", "cactusADM", "gcc"):
            assert self._profile(app).frac_ready_at_rename > 0.4, app

    def test_code_recurrence(self):
        profile = self._profile("perlbench")
        assert profile.dynamic_per_static > 4  # predictors can learn

    def test_kernel_characterisation(self):
        profile = characterize(kernel_trace("pointer_chase",
                                            nodes=64, hops=256))
        # One serial load per loop iteration; lines are 4 KiB apart.
        assert profile.frac_loads > 0.2
        assert profile.line_reuse > 2  # the walk revisits each node line
