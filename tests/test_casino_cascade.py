"""Deep-dive tests on the wider cascaded CASINO designs (Section VI-F)."""

import dataclasses

import pytest

from repro.common.params import RENAME_CONVENTIONAL, make_casino_config
from repro.cores import build_core
from repro.workloads import get_profile
from repro.workloads.generator import SyntheticWorkload
from tests.util import alu, div, independent_ops, run_trace, with_pcs


class TestCascadeStructure:
    def test_queue_sizes_3way(self):
        core = build_core(make_casino_config(3))
        core.reset(with_pcs(independent_ops(4)))
        assert core.queue_sizes == [4, 8, 24]  # S-IQ, intermediate, IQ

    def test_queue_sizes_4way(self):
        core = build_core(make_casino_config(4))
        core.reset(with_pcs(independent_ops(4)))
        assert core.queue_sizes == [4, 8, 8, 48]

    def test_wider_uses_conventional_renaming(self):
        cfg = make_casino_config(4)
        assert cfg.rename_scheme == RENAME_CONVENTIONAL
        core = build_core(cfg)
        core.reset(with_pcs(independent_ops(4)))
        assert not core._use_dbuf  # no data buffer with own registers


class TestCascadeBehaviour:
    def test_instructions_flow_through_intermediate_queue(self):
        """Non-ready work passes S-IQ -> intermediate -> IQ; everything
        still commits in order."""
        trace = [div(1)] + [alu(2, (1,)), alu(3, (2,)), alu(4, (3,)),
                            alu(5, (4,))] + independent_ops(20, start_reg=6)
        stats, core = run_trace(make_casino_config(3), trace)
        assert stats.committed == len(trace)
        assert stats.get("siq_passes") >= 4  # chain moved down the cascade

    def test_intermediate_queue_issues_speculatively(self):
        """A consumer that becomes ready while waiting in an intermediate
        S-IQ issues from there (Section VI-F: 'ready instructions can be
        issued at the head of any IQ')."""
        trace = [div(1)] + [alu(2, (1,))] + independent_ops(30, start_reg=3)
        stats, _ = run_trace(make_casino_config(3), trace)
        assert stats.get("issued_spec") > 0
        assert stats.committed == len(trace)

    def test_width_scaling_on_parallel_work(self):
        trace = SyntheticWorkload(get_profile("gamess")).generate(6000)
        ipcs = {}
        for width in (2, 3, 4):
            core = build_core(make_casino_config(width))
            ipcs[width] = core.run(list(trace), warmup=1500).ipc
        assert ipcs[3] >= ipcs[2] * 0.98
        assert ipcs[4] >= ipcs[3] * 0.98

    def test_4way_violation_recovery(self):
        from tests.util import load, store
        trace = ([div(1), store(1, 14, 0xC000), load(2, 15, 0xC000)]
                 + independent_ops(20, start_reg=3))
        stats, core = run_trace(make_casino_config(4), trace)
        assert stats.committed == len(trace)
        assert core.pipeline_empty()

    def test_cascade_preserves_spec_fraction_reporting(self):
        trace = SyntheticWorkload(get_profile("hmmer")).generate(4000)
        stats = build_core(make_casino_config(4)).run(trace)
        assert (stats.get("issued_spec") + stats.get("issued_iq")
                == stats.get("issued"))


class TestCascadeResources:
    def test_prf_scales(self):
        cfg = make_casino_config(4)
        core = build_core(cfg)
        core.reset(with_pcs(independent_ops(4)))
        from repro.common.params import NUM_INT_ARCH
        assert core.renamer.free_int == cfg.prf_int - NUM_INT_ARCH

    def test_small_prf_4way_still_commits(self):
        cfg = dataclasses.replace(make_casino_config(4),
                                  prf_int=20, prf_fp=10)
        trace = SyntheticWorkload(get_profile("povray")).generate(3000)
        stats = build_core(cfg).run(trace)
        assert stats.committed == 3000
