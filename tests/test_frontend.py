"""TAGE, BTB and fetch-unit behaviour."""

import pytest

from repro.common.params import BranchPredictorConfig, make_ino_config
from repro.common.stats import Stats
from repro.engine.stream import InstStream
from repro.frontend.btb import Btb
from repro.frontend.fetch import FetchUnit
from repro.frontend.tage import Tage
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchy


class TestTage:
    def test_learns_always_taken(self):
        tage = Tage()
        pc = 0x4000
        for _ in range(64):
            tage.update(pc, True)
        assert tage.predict(pc) is True

    def test_learns_always_not_taken(self):
        tage = Tage()
        pc = 0x4100
        for _ in range(64):
            tage.update(pc, False)
        assert tage.predict(pc) is False

    def test_learns_loop_pattern_with_history(self):
        """A (T,T,T,NT) loop pattern is history-predictable: after training,
        the mispredict rate over one more sweep should be low."""
        tage = Tage()
        pc = 0x4200
        pattern = [True, True, True, False]
        for _ in range(200):
            for taken in pattern:
                tage.update(pc, taken)
        wrong = 0
        for _ in range(25):
            for taken in pattern:
                if tage.predict(pc) != taken:
                    wrong += 1
                tage.update(pc, taken)
        assert wrong <= 10  # bimodal alone would miss ~25 of 100

    def test_random_alias_free_pcs(self):
        """Different PCs train independently."""
        tage = Tage()
        for _ in range(32):
            tage.update(0x5000, True)
            tage.update(0x5004, False)
        assert tage.predict(0x5000) is True
        assert tage.predict(0x5004) is False

    def test_mispredict_rate_property(self):
        tage = Tage()
        for i in range(50):
            tage.update(0x6000, True)
        assert 0.0 <= tage.mispredict_rate <= 1.0

    def test_ghr_bounded(self):
        cfg = BranchPredictorConfig()
        tage = Tage(cfg)
        for i in range(100):
            tage.update(0x7000 + 4 * i, True)
        assert tage.ghr < (1 << cfg.ghr_bits)


class TestBtb:
    def test_miss_then_hit(self):
        btb = Btb()
        assert btb.lookup(0x4000) is None
        btb.update(0x4000, 0x5000)
        assert btb.lookup(0x4000) == 0x5000

    def test_update_replaces_target(self):
        btb = Btb()
        btb.update(0x4000, 0x5000)
        btb.update(0x4000, 0x6000)
        assert btb.lookup(0x4000) == 0x6000

    def test_lru_within_set(self):
        btb = Btb(n_sets=1, n_ways=2)
        btb.update(0x0, 1)
        btb.update(0x4, 2)
        btb.lookup(0x0)       # refresh
        btb.update(0x8, 3)    # evicts 0x4
        assert btb.lookup(0x0) == 1
        assert btb.lookup(0x4) is None


def branch(pc, taken, target, seq=-1):
    return DynInst(pc=pc, op=OpClass.BRANCH, srcs=(1,), taken=taken,
                   target=target if taken else None, seq=seq)


def make_fetch(insts):
    cfg = make_ino_config()
    stats = Stats()
    stream = InstStream(insts)
    hier = MemoryHierarchy(stats=stats)
    # Warm the I-cache so the tests observe steady-state fetch behaviour.
    for inst in insts:
        hier.l1i.install_prefetch(inst.pc, fill_at=-1)
    return FetchUnit(cfg, stream, hier, stats=stats), stream


class TestFetchUnit:
    def test_supplies_width_per_cycle(self):
        insts = [DynInst(pc=0x1000 + 4 * i, op=OpClass.INT_ALU, srcs=(),
                         dst=1) for i in range(8)]
        fetch, _ = make_fetch(insts)
        fetch.tick(0)
        fetch.tick(1)
        got = fetch.pop_ready(0 + fetch.cfg.frontend_latency, 4)
        assert len(got) == 2  # only cycle-0 fetches are decode-ready

    def test_mispredicted_branch_gates_fetch(self):
        insts = [branch(0x1000, True, 0x2000)] + [
            DynInst(pc=0x2000 + 4 * i, op=OpClass.INT_ALU) for i in range(4)]
        fetch, _ = make_fetch(insts)
        fetch.tick(0)   # BTB-cold taken branch => mispredict
        assert fetch.blocked_seq == 0
        fetch.tick(1)
        assert len(fetch.queue) == 1  # nothing fetched while gated

    def test_resolve_resumes_after_penalty(self):
        insts = [branch(0x1000, True, 0x2000)] + [
            DynInst(pc=0x2000 + 4 * i, op=OpClass.INT_ALU) for i in range(4)]
        fetch, _ = make_fetch(insts)
        fetch.tick(0)
        fetch.resolve_branch(0, done_cycle=10)
        assert fetch.blocked_seq is None
        resume = 10 + fetch.cfg.mispredict_penalty
        fetch.tick(resume - 1)
        assert len(fetch.queue) == 1  # still stalled
        fetch.tick(resume)
        assert len(fetch.queue) > 1

    def test_predicted_taken_branch_learns(self):
        # Same branch twice: second time the BTB knows the target.
        insts = ([branch(0x1000, True, 0x2000, seq=0)]
                 + [branch(0x1000, True, 0x2000, seq=1)]
                 + [DynInst(pc=0x2000, op=OpClass.INT_ALU)])
        fetch, _ = make_fetch(insts)
        fetch.tick(0)
        fetch.resolve_branch(0, 5)
        fetch.tick(5 + fetch.cfg.mispredict_penalty)
        # The second instance was direction-predicted (bimodal weakly taken
        # initialises to taken) and the BTB now has the target.
        assert fetch.blocked_seq is None

    def test_squash_rewinds_stream(self):
        insts = [DynInst(pc=0x1000 + 4 * i, op=OpClass.INT_ALU)
                 for i in range(8)]
        fetch, stream = make_fetch(insts)
        fetch.tick(0)
        fetch.tick(1)
        fetch.squash(1, resume_cycle=20)
        assert stream.cursor == 1
        assert all(f.inst.seq < 1 for f in fetch.queue)

    def test_drained(self):
        insts = [DynInst(pc=0x1000, op=OpClass.INT_ALU)]
        fetch, _ = make_fetch(insts)
        assert not fetch.drained
        fetch.tick(0)
        fetch.pop_ready(100, 4)
        assert fetch.drained


class TestInstStream:
    def test_seq_assignment(self):
        stream = InstStream([DynInst(pc=0, op=OpClass.NOP) for _ in range(3)])
        assert [stream.fetch().seq for _ in range(3)] == [0, 1, 2]
        assert stream.fetch() is None

    def test_rewind(self):
        stream = InstStream([DynInst(pc=0, op=OpClass.NOP) for _ in range(3)])
        stream.fetch()
        stream.fetch()
        stream.rewind(1)
        assert stream.fetch().seq == 1

    def test_rewind_forward_rejected(self):
        stream = InstStream([DynInst(pc=0, op=OpClass.NOP) for _ in range(3)])
        with pytest.raises(ValueError):
            stream.rewind(2)

    def test_peek_does_not_consume(self):
        stream = InstStream([DynInst(pc=0, op=OpClass.NOP)])
        assert stream.peek() is stream.peek()
        assert not stream.exhausted
