"""Unit tests for the OSCA filter and the CASINO LSU."""

import pytest

from repro.common.params import (
    DISAMBIG_NOLQ,
    DISAMBIG_NOLQ_OSCA,
    make_casino_config,
)
from repro.common.stats import Stats
from repro.cores.casino.lsu import CasinoLsu
from repro.cores.casino.osca import Osca
from repro.engine.core_base import InflightInst
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


class TestOsca:
    def test_inc_dec_roundtrip(self):
        osca = Osca()
        osca.inc(0x100, 8)
        assert osca.outstanding(0x100, 8) == 1
        osca.dec(0x100, 8)
        assert osca.outstanding(0x100, 8) == 0
        assert osca.total == 0

    def test_eight_byte_access_touches_two_granules(self):
        osca = Osca(granule=4)
        osca.inc(0x100, 8)
        assert osca.outstanding(0x100, 4) == 1
        assert osca.outstanding(0x104, 4) == 1

    def test_unaligned_access_covers_range(self):
        osca = Osca(granule=4)
        osca.inc(0x102, 4)  # spans granules 0x100 and 0x104
        assert osca.outstanding(0x100, 4) == 1
        assert osca.outstanding(0x104, 4) == 1

    def test_aliasing_false_positive(self):
        """Two addresses 64 granules apart share a counter: the filter may
        only err toward searching, never toward skipping."""
        osca = Osca(entries=64, granule=4)
        osca.inc(0x0, 4)
        assert osca.outstanding(64 * 4, 4) == 1  # alias: search anyway

    def test_underflow_asserts(self):
        osca = Osca()
        with pytest.raises(AssertionError):
            osca.dec(0x100, 4)

    def test_saturation_guard(self):
        osca = Osca(entries=4, granule=4, max_outstanding=2)
        for _ in range(4):
            osca.inc(0x0, 4)
        with pytest.raises(AssertionError):
            osca.inc(0x0, 4)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Osca(entries=0)


def _store(seq, addr, resolved=True):
    e = InflightInst(DynInst(pc=0x100 + seq, op=OpClass.STORE, srcs=(1, 2),
                             mem_addr=addr, mem_size=8, seq=seq), [])
    if resolved:
        e.issue_at = 0
    return e


def _load(seq, addr):
    return InflightInst(DynInst(pc=0x200 + seq, op=OpClass.LOAD, srcs=(1,),
                                dst=3, mem_addr=addr, mem_size=8, seq=seq), [])


class _FakeHier:
    class _L1:
        class cfg:
            latency = 4
    l1d = _L1()

    def __init__(self):
        self.pins = {}

    def store(self, addr, cycle):
        return 4

    def add_line_sentinel(self, addr):
        self.pins[addr >> 6] = self.pins.get(addr >> 6, 0) + 1

    def remove_line_sentinel(self, addr):
        line = addr >> 6
        if self.pins.get(line, 0) <= 1:
            self.pins.pop(line, None)
        else:
            self.pins[line] -= 1


def make_lsu(mode=DISAMBIG_NOLQ_OSCA):
    import dataclasses
    cfg = dataclasses.replace(make_casino_config(), disambiguation=mode)
    return CasinoLsu(cfg, _FakeHier(), Stats())


class TestCasinoLsuForwarding:
    def test_youngest_matching_store_forwards(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s1, s2 = _store(0, 0x100), _store(1, 0x100)
        lsu.dispatch_store(s1)
        lsu.dispatch_store(s2)
        forward = lsu.load_issued(_load(2, 0x100), cycle=5, from_iq=False)
        assert forward is s2

    def test_unresolved_store_does_not_forward(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x100, resolved=False)
        lsu.dispatch_store(s)
        ld = _load(1, 0x100)
        assert lsu.load_issued(ld, cycle=5, from_iq=False) is None
        assert ld.unresolved_older == [s]

    def test_younger_store_never_forwards(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(5, 0x100)
        lsu.dispatch_store(s)
        assert lsu.load_issued(_load(2, 0x100), cycle=5, from_iq=False) is None


class TestSentinels:
    def test_sentinel_on_oldest_unresolved(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s1 = _store(0, 0x100, resolved=False)
        s2 = _store(1, 0x200, resolved=False)
        lsu.dispatch_store(s1)
        lsu.dispatch_store(s2)
        ld = _load(2, 0x300)
        lsu.load_issued(ld, cycle=5, from_iq=False)
        assert ld.sentinel_on is s1
        assert lsu.sentinels[s1] == 2

    def test_younger_load_replaces_sentinel_owner(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x100, resolved=False)
        lsu.dispatch_store(s)
        lsu.load_issued(_load(1, 0x300), cycle=5, from_iq=False)
        lsu.load_issued(_load(2, 0x400), cycle=6, from_iq=False)
        assert lsu.sentinels[s] == 2

    def test_commit_clears_own_sentinel_only(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x100, resolved=False)
        lsu.dispatch_store(s)
        ld1, ld2 = _load(1, 0x300), _load(2, 0x400)
        lsu.load_issued(ld1, cycle=5, from_iq=False)
        lsu.load_issued(ld2, cycle=6, from_iq=False)
        s.issue_at = 7  # resolve before the loads commit
        assert not lsu.commit_load(ld1, cycle=10)
        assert lsu.sentinels[s] == 2  # ld2 still owns it
        assert not lsu.commit_load(ld2, cycle=11)
        assert s not in lsu.sentinels

    def test_sentinel_blocks_retirement(self):
        from repro.engine.funits import FuPool
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x100, resolved=False)
        lsu.dispatch_store(s)
        lsu.load_issued(_load(1, 0x300), cycle=5, from_iq=False)
        s.issue_at = 6
        lsu.commit_store(s, cycle=7)
        fu = FuPool(make_casino_config())
        lsu.retire_head(cycle=20, fu=fu)
        assert lsu.sq  # still blocked by the sentinel
        assert lsu.stats.get("sb_sentinel_blocks") >= 1


class TestValueCheck:
    def test_violation_on_overlap(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x100, resolved=False)
        lsu.dispatch_store(s)
        ld = _load(1, 0x100)
        lsu.load_issued(ld, cycle=5, from_iq=False)
        s.issue_at = 6
        s.inst.mem_addr = 0x100  # resolves to the load's address
        assert lsu.commit_load(ld, cycle=10)
        assert lsu.stats.get("mem_order_violations") == 1

    def test_no_violation_when_disjoint(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x800, resolved=False)
        lsu.dispatch_store(s)
        ld = _load(1, 0x100)
        lsu.load_issued(ld, cycle=5, from_iq=False)
        s.issue_at = 6
        assert not lsu.commit_load(ld, cycle=10)

    def test_loads_from_iq_never_speculative(self):
        lsu = make_lsu(DISAMBIG_NOLQ)
        s = _store(0, 0x100, resolved=False)
        lsu.dispatch_store(s)
        ld = _load(1, 0x100)
        lsu.load_issued(ld, cycle=5, from_iq=True)
        assert not ld.unresolved_older
        assert ld.sentinel_on is None


class TestOscaFiltering:
    def test_zero_counter_skips_search(self):
        lsu = make_lsu()
        ld = _load(1, 0x500)
        lsu.load_issued(ld, cycle=5, from_iq=False)
        assert ld.osca_skipped
        assert lsu.stats.get("sq_searches") == 0

    def test_matching_outstanding_store_forces_search(self):
        lsu = make_lsu()
        s = _store(0, 0x500)
        lsu.dispatch_store(s)
        lsu.store_issued(s, cycle=1)
        ld = _load(1, 0x500)
        forward = lsu.load_issued(ld, cycle=5, from_iq=False)
        assert forward is s
        assert lsu.stats.get("sq_searches") == 1

    def test_squash_unwinds_osca(self):
        lsu = make_lsu()
        s = _store(3, 0x500)
        lsu.dispatch_store(s)
        lsu.store_issued(s, cycle=1)
        lsu.squash(2)
        assert lsu.osca.total == 0
        assert not lsu.sq
