"""Seeded chaos suite for the crash-safe job fabric.

Each scenario injects one fault class — worker SIGKILL, whole-fabric
crash + restart, journal truncation, journal bit-flip, store-entry
corruption, stalled/delayed heartbeats — and asserts the invariant:
every submitted job terminates in exactly one of done/failed/dead_letter
and every ``done`` result is counter-digest identical to serial
execution.  All randomness is seeded; reruns inject the same faults.
"""

import dataclasses
import time

import pytest

from repro.common.params import make_casino_config, make_ino_config
from repro.service.chaos import (
    ChaosFabric,
    assert_invariant,
    serial_digests,
)
from repro.service.jobs import JobSpec
from repro.service.store import ResultStore
from repro.workloads.suite import SUITE

N, WARMUP = 1200, 200


def _specs(pairs, n=N, warmup=WARMUP):
    factories = {"ino": make_ino_config, "casino": make_casino_config}
    return [JobSpec.make(factories[core](), SUITE[app],
                         n_instrs=n, warmup=warmup)
            for core, app in pairs]


STANDARD_PAIRS = [("ino", "hmmer"), ("casino", "hmmer"),
                  ("ino", "mcf"), ("casino", "mcf")]


@pytest.fixture(scope="module")
def oracle():
    """Serial ground-truth digests for the standard batch."""
    return serial_digests(_specs(STANDARD_PAIRS))


def _wait_for(predicate, timeout_s=120.0, poll_s=0.02):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never held"
        time.sleep(poll_s)


class TestWorkerSigkill:
    def test_killed_worker_mid_batch_invariant_holds(self, tmp_path):
        specs = _specs([("ino", "hmmer"), ("casino", "hmmer"),
                        ("ino", "mcf")], n=30_000, warmup=1000)
        expected = serial_digests(specs)
        fabric = ChaosFabric(tmp_path, workers=2, seed=101)
        fabric.start()
        try:
            fabric.submit(specs)
            _wait_for(lambda: any(
                e["status"] == "running"
                for e in fabric.service.jobs_snapshot()))
            fabric.kill_random_worker()
            entries = fabric.wait_all(timeout_s=300.0)
            stats = fabric.service.pool.stats_snapshot()
        finally:
            fabric.stop()
        assert stats["worker_deaths"] >= 1
        assert_invariant(entries, fabric.store, specs, expected)


class TestServerRestart:
    def test_restart_mid_batch_no_duplicates_no_losses(self, tmp_path,
                                                       oracle):
        """Acceptance: a restarted server completes the batch with zero
        re-simulation of store-hit jobs and zero lost jobs."""
        specs = _specs(STANDARD_PAIRS)
        fabric = ChaosFabric(tmp_path, workers=2, seed=202)
        fabric.start()
        try:
            fabric.submit(specs)
            # Let part of the batch land, then die without warning.
            _wait_for(lambda: len(ResultStore(tmp_path / "store")) >= 1)
            fabric.crash()
            done_at_crash = len(ResultStore(tmp_path / "store"))

            fabric.start()
            recovery = dict(fabric.service.recovery)
            fabric.ensure_submitted(specs)  # client-retry of unacked work
            entries = fabric.wait_all(timeout_s=300.0)
            dispatched_after = \
                fabric.service.pool.stats_snapshot()["dispatched"]
        finally:
            fabric.stop()
        # Every pre-crash submission was replayed from the journal.
        assert recovery["replayed"] >= done_at_crash
        # Zero duplicate simulations: the second generation dispatches
        # exactly the jobs whose results had not yet landed in the store.
        assert dispatched_after == len(specs) - done_at_crash
        assert len(ResultStore(tmp_path / "store")) == len(specs)
        assert_invariant(entries, fabric.store, specs, oracle)


class TestJournalDamage:
    def test_truncated_tail_recovers_without_resimulation(self, tmp_path,
                                                          oracle):
        specs = _specs(STANDARD_PAIRS)
        fabric = ChaosFabric(tmp_path, workers=2, seed=303)
        fabric.start()
        try:
            fabric.submit(specs)
            fabric.wait_all(timeout_s=300.0)
            fabric.crash()
            assert fabric.truncate_journal_tail(30) > 0

            fabric.start()
            fabric.ensure_submitted(specs)
            entries = fabric.wait_all(timeout_s=300.0)
            stats = fabric.service.pool.stats_snapshot()
        finally:
            fabric.stop()
        # Results all survived in the content-addressed store, so the
        # damaged journal costs bookkeeping, never simulation time.
        assert stats["dispatched"] == 0
        assert_invariant(entries, fabric.store, specs, oracle)

    def test_bit_flip_skipped_and_counted(self, tmp_path, oracle):
        specs = _specs(STANDARD_PAIRS)
        fabric = ChaosFabric(tmp_path, workers=2, seed=404)
        fabric.start()
        try:
            fabric.submit(specs)
            fabric.wait_all(timeout_s=300.0)
            fabric.crash()
            fabric.flip_journal_bit()

            fabric.start()
            journal_stats = fabric.service.journal.stats_snapshot()
            fabric.ensure_submitted(specs)
            entries = fabric.wait_all(timeout_s=300.0)
            stats = fabric.service.pool.stats_snapshot()
        finally:
            fabric.stop()
        assert journal_stats["corrupt_skipped"] \
            + journal_stats["torn_tail"] >= 1
        assert stats["dispatched"] == 0
        assert_invariant(entries, fabric.store, specs, oracle)


class TestStoreCorruption:
    def test_scrub_quarantines_and_repair_recomputes(self, tmp_path,
                                                     oracle):
        specs = _specs(STANDARD_PAIRS)
        fabric = ChaosFabric(tmp_path, workers=2, seed=505)
        fabric.start()
        try:
            fabric.submit(specs)
            fabric.wait_all(timeout_s=300.0)
            key = fabric.corrupt_store_entry()
            report = fabric.service.scrub(repair=True)
            assert key in report["results"]["quarantined"]
            assert len(report["repair"]["requeued"]) == 1
            assert not report["repair"]["unrepairable"]
            entries = fabric.wait_all(timeout_s=300.0)
            # The recomputed record replaced the corrupt one, verbatim.
            record = fabric.store.get(key)
        finally:
            fabric.stop()
        assert record is not None
        assert record["manifest"]["counter_digest"] == oracle[key]
        assert_invariant(entries, fabric.store, specs, oracle)


class TestHeartbeats:
    def test_stalled_heartbeat_reclaimed_bit_identically(self, tmp_path):
        specs = _specs([("ino", "hmmer")])
        expected = serial_digests(specs)
        stalled = [dataclasses.replace(specs[0], test_stall_s=30.0)]
        fabric = ChaosFabric(tmp_path, workers=1, seed=606,
                             lease_s=0.6, heartbeat_s=0.1)
        fabric.start()
        try:
            fabric.submit(stalled)
            entries = fabric.wait_all(timeout_s=300.0)
            stats = fabric.service.pool.stats_snapshot()
        finally:
            fabric.stop()
        assert stats["lease_expired"] >= 1
        assert stats["redeliveries"] >= 1
        assert_invariant(entries, fabric.store, specs, expected)

    def test_delayed_heartbeat_within_lease_is_tolerated(self, tmp_path):
        specs = _specs([("ino", "hmmer")])
        expected = serial_digests(specs)
        delayed = [dataclasses.replace(specs[0], test_stall_s=0.3)]
        fabric = ChaosFabric(tmp_path, workers=1, seed=707,
                             lease_s=5.0, heartbeat_s=0.1)
        fabric.start()
        try:
            fabric.submit(delayed)
            entries = fabric.wait_all(timeout_s=300.0)
            stats = fabric.service.pool.stats_snapshot()
        finally:
            fabric.stop()
        assert stats["lease_expired"] == 0
        assert stats["redeliveries"] == 0
        assert_invariant(entries, fabric.store, specs, expected)


class TestClusterNodeSigkill:
    def test_node_killed_mid_lease_redelivered_bit_identically(
            self, tmp_path, oracle):
        """SIGKILL one of two node processes (whole process group: agent
        + its pool workers) while it holds leases.  The coordinator must
        notice via missed heartbeats, reclaim the dead node's leases,
        redeliver to the survivor, and finish the batch with exactly one
        terminal state per job and serial-identical digests."""
        from repro.service.chaos import ClusterChaosFabric
        specs = _specs(STANDARD_PAIRS)
        # Stalls keep leases in flight when the SIGKILL lands (the stall
        # hook is not part of the result key, so the oracle still maps).
        staggered = [dataclasses.replace(s, test_stall_s=1.0)
                     for s in specs]
        fabric = ClusterChaosFabric(tmp_path, seed=808)
        fabric.start()
        try:
            fabric.spawn_node()
            fabric.spawn_node()
            fabric.wait_nodes_alive(2)
            ids = fabric.submit(staggered)
            fabric.kill_busy_node()
            entries = fabric.wait_all(timeout_s=240.0)
            counters = dict(fabric.service.counters)
            roster = {e["node"]: e["state"]
                      for e in fabric.service.roster()}
        finally:
            fabric.stop()
        # Exactly one terminal state per submitted job: nothing lost,
        # nothing duplicated.
        assert sorted(entries) == sorted(ids)
        assert all(e["status"] == "done" for e in entries.values())
        assert counters["node_deaths"] == 1
        assert "dead" in roster.values()
        assert_invariant(entries, fabric.store, specs, oracle)

    def test_node_death_with_empty_queue_redelivers_to_survivor(
            self, tmp_path, oracle):
        """Kill the node while the queue is already empty (everything
        leased): redelivery must come purely from lease reclaim."""
        from repro.service.chaos import ClusterChaosFabric
        specs = _specs(STANDARD_PAIRS[:2])
        stalled = [dataclasses.replace(s, test_stall_s=0.8)
                   for s in specs]
        fabric = ClusterChaosFabric(tmp_path, seed=909)
        fabric.start()
        try:
            fabric.spawn_node()
            fabric.spawn_node()
            fabric.wait_nodes_alive(2)
            fabric.submit(stalled)
            _wait_for(lambda: not any(
                e["status"] == "queued"
                for e in fabric.service.jobs_snapshot()), timeout_s=60)
            victim = fabric.kill_busy_node()
            entries = fabric.wait_all(timeout_s=240.0)
            counters = dict(fabric.service.counters)
        finally:
            fabric.stop()
        assert all(e["status"] == "done" for e in entries.values())
        assert counters["node_deaths"] == 1
        assert_invariant(entries, fabric.store, specs, oracle)


class TestClusterCoordinatorRestart:
    def test_restart_with_live_nodes_no_duplicates_no_losses(
            self, tmp_path, oracle):
        """Crash the coordinator mid-batch (front door gone, journal
        abandoned un-closed) while both node processes stay alive, then
        restart it on the same port.  Nodes reconnect and re-register on
        their own; journal recovery requeues open jobs; completions of
        pre-crash leases are accepted first-completion-wins.  Every job
        ends in exactly one terminal state with serial digests."""
        from repro.service.chaos import ClusterChaosFabric
        specs = _specs(STANDARD_PAIRS)
        staggered = [dataclasses.replace(s, test_stall_s=0.4 * (i % 2))
                     for i, s in enumerate(specs)]
        fabric = ClusterChaosFabric(tmp_path, seed=1010)
        fabric.start()
        try:
            fabric.spawn_node()
            fabric.spawn_node()
            fabric.wait_nodes_alive(2)
            fabric.submit(staggered)
            time.sleep(0.5)  # some done, some leased, some queued
            fabric.restart()
            recovery = dict(fabric.service.recovery)
            fabric.wait_nodes_alive(2, timeout_s=60)
            # Client retry model: resubmit anything the restarted
            # coordinator does not track (never-acknowledged work).
            fabric.ensure_submitted(staggered)
            entries = fabric.wait_all(timeout_s=240.0)
        finally:
            fabric.stop()
        assert recovery["replayed"] >= 1
        assert recovery["lost"] == 0
        assert all(e["status"] == "done" for e in entries.values())
        assert_invariant(entries, fabric.store, specs, oracle)
