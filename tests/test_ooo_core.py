"""Out-of-order core: dynamic scheduling, renaming limits, memory
speculation and store-set learning."""

import dataclasses

import pytest

from repro.common.params import make_ino_config, make_ooo_config
from repro.cores.ooo import StoreSets
from tests.util import alu, div, independent_ops, load, run_trace, serial_chain, store


class TestDynamicScheduling:
    def test_commits_everything(self):
        stats, _ = run_trace(make_ooo_config(), independent_ops(50))
        assert stats.committed == 50

    def test_reorders_past_stall(self):
        """Ready work behind a long-latency consumer issues out of order:
        consumer position should barely matter."""
        near = [div(1), alu(2, (1,))] + independent_ops(20, start_reg=3)
        far = [div(1)] + independent_ops(20, start_reg=3) + [alu(2, (1,))]
        s_near, _ = run_trace(make_ooo_config(), near)
        s_far, _ = run_trace(make_ooo_config(), far)
        assert abs(s_near.cycles - s_far.cycles) <= 3

    def test_beats_ino_on_blocked_head(self):
        """Four divider+consumer pairs: InO serialises them (each consumer
        stalls the head), OoO overlaps all four dividers."""
        trace = []
        for i in range(4):
            trace.extend([div(1 + i), alu(10 + i, (1 + i,))])
        s_ooo, _ = run_trace(make_ooo_config(), list(trace))
        s_ino, _ = run_trace(make_ino_config(), list(trace))
        assert s_ooo.cycles < s_ino.cycles - 15

    def test_oldest_first_select(self):
        """With more ready ops than issue slots, the oldest goes first:
        a chain gets priority over younger fillers, keeping the chain's
        total latency near its dataflow height."""
        chain = serial_chain(8, reg=1)
        filler = independent_ops(16, start_reg=8)
        trace = []
        for c, pair in zip(chain, zip(filler[::2], filler[1::2])):
            trace.extend([c, *pair])
        stats, _ = run_trace(make_ooo_config(), trace)
        # 24 ops at width 2 needs >= 12 cycles; the chain (8 deep) fits
        # inside that if it is prioritised.
        assert stats.cycles <= 12 + 8

    def test_wakeup_events_counted(self):
        stats, _ = run_trace(make_ooo_config(), independent_ops(30))
        assert stats.get("iq_wakeup_cam") > 0
        assert stats.get("iq_select") > 0


class TestRenaming:
    def test_prf_exhaustion_stalls_dispatch(self):
        cfg = dataclasses.replace(make_ooo_config(), prf_int=18)  # 2 spare
        trace = [div(1), div(2)] + independent_ops(30, start_reg=3)
        stats, _ = run_trace(cfg, trace)
        assert stats.get("dispatch_stall_prf") > 0
        assert stats.committed == 32

    def test_free_list_balances(self):
        cfg = make_ooo_config()
        stats, core = run_trace(cfg, independent_ops(40))
        from repro.common.params import NUM_INT_ARCH
        assert core.free_int == cfg.prf_int - NUM_INT_ARCH

    def test_war_waw_do_not_serialise(self):
        """Renaming removes false dependences: repeated writes to one
        register with disjoint readers run at full width."""
        trace = [alu(1) for _ in range(40)]
        stats, _ = run_trace(make_ooo_config(), trace)
        assert stats.ipc > 1.0


class TestMemorySpeculation:
    def _violation_trace(self):
        # Store whose address generation is slow; younger load to the SAME
        # address issues speculatively and must be squashed.
        return [div(1), store(1, 14, 0xC000), load(2, 15, 0xC000),
                alu(3, (2,))] + independent_ops(8, start_reg=4)

    def test_violation_detected_and_recovered(self):
        cfg = dataclasses.replace(make_ooo_config(), store_sets=False)
        stats, _ = run_trace(cfg, self._violation_trace())
        assert stats.get("mem_order_violations") >= 1
        assert stats.get("squashes") >= 1
        assert stats.committed == 12

    def test_speculative_load_overlaps_unrelated_store(self):
        """A load to a different address may pass the slow store freely."""
        cfg = dataclasses.replace(make_ooo_config(), store_sets=False)
        trace = [div(1), store(1, 14, 0xC000), load(2, 15, 0xD000)]
        stats, _ = run_trace(cfg, trace)
        assert stats.get("mem_order_violations") == 0

    def test_store_sets_learn(self):
        """Repeating the violating pattern with the same PCs: the
        predictor blocks the load after the first violation."""
        from repro.cores import build_core
        from tests.util import with_pcs

        pcs = [d.pc for d in with_pcs(self._violation_trace())]
        trace = []
        for _ in range(6):
            iteration = self._violation_trace()
            for pc, inst in zip(pcs, iteration):
                inst.pc = pc  # identical static PCs every iteration
            trace.extend(iteration)
        core = build_core(make_ooo_config())
        stats = core.run(trace, warm_icache=True)
        assert stats.get("mem_order_violations") <= 2
        assert stats.get("storeset_blocks") >= 1
        assert stats.committed == len(trace)

    def test_forwarding_from_resolved_store(self):
        trace = [store(15, 14, 0xE000), load(1, 15, 0xE000)]
        stats, _ = run_trace(make_ooo_config(), trace)
        assert stats.get("stl_forwards") == 1
        assert stats.get("mem_order_violations") == 0

    def test_lq_capacity_stalls_dispatch(self):
        cfg = dataclasses.replace(make_ooo_config(), lq_size=2)
        trace = [div(1)] + [load(2 + (i % 4), 15, 0xF000 + 64 * i)
                            for i in range(12)] + [alu(14, (1,))]
        stats, _ = run_trace(cfg, trace)
        assert stats.committed == 14

    def test_nolq_variant_matches_commits(self):
        cfg = dataclasses.replace(make_ooo_config(), disambiguation="nolq",
                                  store_sets=False)
        stats, _ = run_trace(cfg, self._violation_trace())
        assert stats.committed == 12
        assert stats.get("mem_order_violations") >= 1
        assert stats.get("lq_searches") == 0


class TestStoreSetsUnit:
    def test_violation_merges_sets(self):
        ss = StoreSets()
        ss.on_violation(0x100, 0x200)
        assert ss.ssit[0x100] == ss.ssit[0x200]

    def test_prediction_only_returns_older_stores(self):
        from repro.engine.core_base import InflightInst
        from repro.isa.instruction import DynInst
        from repro.isa.opcodes import OpClass
        ss = StoreSets()
        ss.on_violation(0x100, 0x200)
        st = InflightInst(DynInst(pc=0x100, op=OpClass.STORE, srcs=(1, 2),
                                  mem_addr=0x10, seq=5), [])
        older_load = InflightInst(DynInst(pc=0x200, op=OpClass.LOAD,
                                          srcs=(1,), dst=3, mem_addr=0x10,
                                          seq=1), [])
        younger_load = InflightInst(DynInst(pc=0x200, op=OpClass.LOAD,
                                            srcs=(1,), dst=3, mem_addr=0x10,
                                            seq=9), [])
        ss.store_dispatched(st)
        assert ss.predicted_store(younger_load) is st
        assert ss.predicted_store(older_load) is None

    def test_unknown_pc_predicts_nothing(self):
        from repro.engine.core_base import InflightInst
        from repro.isa.instruction import DynInst
        from repro.isa.opcodes import OpClass
        ss = StoreSets()
        ld = InflightInst(DynInst(pc=0x900, op=OpClass.LOAD, srcs=(1,),
                                  dst=3, mem_addr=0x10, seq=1), [])
        assert ss.predicted_store(ld) is None
