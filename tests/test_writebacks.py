"""Dirty-line writeback behaviour."""

import pytest

from repro.common.params import CacheConfig, MemoryConfig, make_ino_config
from repro.common.stats import Stats
from repro.cores import build_core
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from tests.util import run_trace, store


def make_cache(assoc=2, size_kib=1):
    cfg = CacheConfig(size_kib=size_kib, assoc=assoc, line_bytes=64,
                      latency=4, mshrs=8)
    return Cache("l1d", cfg, lambda addr, cycle: 100, Stats())


class TestDirtyTracking:
    def test_clean_eviction_no_writeback(self):
        cache = make_cache()
        a, b, c = 0x0, 8 * 64, 16 * 64  # same set
        for addr in (a, b, c):
            cache.access(addr, 0)
        assert cache.stats.get("l1d_writebacks") == 0

    def test_dirty_eviction_writes_back(self):
        cache = make_cache()
        a, b, c = 0x0, 8 * 64, 16 * 64
        cache.access(a, 0, is_write=True)
        cache.access(b, 100)
        cache.access(c, 200)  # evicts dirty a
        assert cache.stats.get("l1d_writebacks") == 1

    def test_writeback_clears_dirty_bit(self):
        cache = make_cache()
        a, b, c = 0x0, 8 * 64, 16 * 64
        cache.access(a, 0, is_write=True)
        cache.access(b, 100)
        cache.access(c, 200)       # evict dirty a
        cache.access(a, 300)       # re-fetch a, clean this time
        cache.access(b, 400)
        cache.access(c, 500)       # evict clean a: no second writeback
        assert cache.stats.get("l1d_writebacks") == 1

    def test_writeback_sink_used(self):
        received = []
        cfg = CacheConfig(size_kib=1, assoc=1, line_bytes=64, latency=4)
        cache = Cache("l1d", cfg, lambda a, c: 100, Stats(),
                      writeback_sink=lambda a, c: received.append(a) or 0)
        cache.access(0x0, 0, is_write=True)
        cache.access(16 * 64, 100)  # same (single-way) set: evict
        assert received == [0x0]


class TestHierarchyWritebacks:
    def test_l1_writebacks_land_in_l2(self):
        stats = Stats()
        hier = MemoryHierarchy(MemoryConfig(), stats)
        # Dirty a line, then blow it out of the 8-way L1 set.
        victim = 0x10_0000
        hier.store(victim, 0)
        set_stride = 64 * hier.l1d.n_sets
        for i in range(1, 10):
            hier.load(victim + set_stride * i, 1000 * i)
        assert stats.get("l1d_writebacks") >= 1
        assert hier.l2.contains(victim)

    def test_store_heavy_workload_counts_writebacks(self):
        # Streaming stores over > L1-sized region force dirty evictions.
        insts = [store(15, 14, 0x40_0000 + 64 * i) for i in range(768)]
        stats, _ = run_trace(make_ino_config(), insts)
        assert stats.get("l1d_writebacks") > 0
