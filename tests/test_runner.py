"""Harness: runner memoisation, speedups, tables."""

import pytest

from repro.common.params import make_casino_config, make_ino_config, make_ooo_config
from repro.harness.runner import Runner
from repro.harness.tables import format_series, format_table
from repro.workloads import get_profile


class TestRunner:
    def test_run_returns_result(self):
        runner = Runner(n_instrs=2000, warmup=500)
        res = runner.run(make_ino_config(), get_profile("hmmer"))
        assert res.ipc > 0
        assert res.energy.total_j > 0
        assert res.app == "hmmer"

    def test_memoisation_returns_same_object(self):
        runner = Runner(n_instrs=2000, warmup=500)
        a = runner.run(make_ino_config(), get_profile("hmmer"))
        b = runner.run(make_ino_config(), get_profile("hmmer"))
        assert a is b

    def test_different_configs_not_conflated(self):
        runner = Runner(n_instrs=2000, warmup=500)
        a = runner.run(make_ino_config(), get_profile("hmmer"))
        b = runner.run(make_casino_config(), get_profile("hmmer"))
        assert a is not b
        assert a.stats.cycles != b.stats.cycles

    def test_trace_cached_per_profile(self):
        runner = Runner(n_instrs=2000, warmup=500)
        t1 = runner.trace(get_profile("gcc"))
        t2 = runner.trace(get_profile("gcc"))
        assert t1 is t2

    def test_speedups_structure(self):
        runner = Runner(n_instrs=2000, warmup=500)
        profiles = [get_profile("hmmer"), get_profile("milc")]
        out = runner.speedups([make_casino_config(), make_ooo_config()],
                              profiles, make_ino_config())
        assert set(out) == {"casino", "ooo"}
        assert set(out["casino"]) == {"hmmer", "milc"}
        assert all(v > 0 for v in out["casino"].values())

    def test_run_suite(self):
        runner = Runner(n_instrs=2000, warmup=500)
        out = runner.run_suite(make_ino_config(),
                               [get_profile("hmmer"), get_profile("gcc")])
        assert set(out) == {"hmmer", "gcc"}


class TestTraceCacheLRU:
    """S3: the per-runner trace cache is bounded with LRU eviction."""

    def test_cache_bounded_and_evictions_counted(self):
        runner = Runner(n_instrs=500, warmup=100, trace_cache_entries=2)
        for app in ("hmmer", "gcc", "milc"):
            runner.trace(get_profile(app))
        assert len(runner._traces) == 2
        assert runner.trace_evictions == 1

    def test_eviction_is_least_recently_used(self):
        runner = Runner(n_instrs=500, warmup=100, trace_cache_entries=2)
        t_hmmer = runner.trace(get_profile("hmmer"))
        runner.trace(get_profile("gcc"))
        # Touch hmmer so gcc is the LRU entry, then overflow.
        assert runner.trace(get_profile("hmmer")) is t_hmmer
        runner.trace(get_profile("milc"))
        assert runner.trace(get_profile("hmmer")) is t_hmmer  # still cached
        assert runner.trace_evictions == 1

    def test_default_bound(self):
        runner = Runner(n_instrs=500, warmup=100)
        assert runner.trace_cache_entries == Runner.DEFAULT_TRACE_CACHE_ENTRIES
        assert runner.trace_evictions == 0


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["longer", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "1.500" in text

    def test_format_table_int_passthrough(self):
        text = format_table(["n"], [[42]])
        assert "42" in text

    def test_format_series(self):
        text = format_series("sweep", {"a": 1.0, "b": 2})
        assert text.startswith("sweep:")
        assert "a=1.000" in text and "b=2" in text
