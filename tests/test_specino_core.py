"""SpecInO limit model (Figure 2 machinery)."""

import pytest

from repro.common.params import make_ino_config, make_specino_config
from tests.util import alu, div, independent_ops, load, run_trace, store


class TestSpecWindow:
    def test_commits_everything(self):
        stats, _ = run_trace(make_specino_config(), independent_ops(40))
        assert stats.committed == 40

    def test_issues_ready_work_behind_stall(self):
        trace = [div(1), alu(2, (1,))] + independent_ops(16, start_reg=3)
        stats, _ = run_trace(make_specino_config(2, 1), trace)
        assert stats.get("issued_spec") > 0

    def test_beats_ino_on_divider_pairs(self):
        trace = []
        for i in range(4):
            trace.extend([div(1 + i), alu(10 + i, (1 + i,))])
        s_spec, _ = run_trace(make_specino_config(2, 1), list(trace))
        s_ino, _ = run_trace(make_ino_config(), list(trace))
        assert s_spec.cycles < s_ino.cycles

    def test_nonmem_mode_never_speculates_memory(self):
        trace = [div(1), alu(2, (1,))] + [
            load(3 + i % 4, 15, 0x4000 + 64 * i) for i in range(8)]
        stats, core = run_trace(make_specino_config(2, 1, mem=False), trace)
        # Every load issued from the head (program order), so loads issue
        # strictly after the divider's consumer.
        assert stats.committed == 10
        mem_spec = stats.get("issued_spec")
        # Non-mem windows may still speculate the ALU ops; ensure no load
        # did so by re-running with mem allowed and comparing cycles.
        stats_mem, _ = run_trace(make_specino_config(2, 1, mem=True), [
            div(1), alu(2, (1,))] + [
            load(3 + i % 4, 15, 0x4000 + 64 * i) for i in range(8)])
        assert stats_mem.cycles <= stats.cycles

    def test_mem_speculation_extracts_mlp(self):
        """Loads behind a stalled consumer overlap their misses only in
        the All-Types model."""
        trace = [div(1), alu(2, (1,))] + [
            load(3 + i % 4, 15, 0x10000 + 4096 * i) for i in range(6)]
        allt, _ = run_trace(make_specino_config(2, 1, mem=True), list(trace))
        nonm, _ = run_trace(make_specino_config(2, 1, mem=False), list(trace))
        assert allt.cycles < nonm.cycles

    def test_window_slides_on_empty(self):
        # A long non-ready prefix: the window must slide past it and find
        # the ready tail.
        trace = [div(1)] + [alu(2, (1,)), alu(3, (2,)), alu(4, (3,))] \
            + independent_ops(8, start_reg=5)
        stats, _ = run_trace(make_specino_config(2, 1), trace)
        assert stats.get("issued_spec") >= 4

    def test_oracle_disambiguation_no_violations(self):
        trace = [div(1), store(1, 14, 0xC000), load(2, 15, 0xC000)]
        stats, _ = run_trace(make_specino_config(2, 1), trace)
        assert stats.get("mem_order_violations") == 0
        assert stats.get("squashes") == 0
        assert stats.committed == 3
