"""Remaining edge coverage: descending streams, branch personalities,
OSCA granularity configuration, experiment main() smoke."""

import dataclasses

import pytest

from repro.common.params import MemoryConfig, make_casino_config
from repro.common.stats import Stats
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.generator import (
    BR_LOOP,
    BR_PATTERN,
    SyntheticWorkload,
    WorkloadProfile,
)


class TestPrefetcherDirections:
    def test_descending_stream_detected(self):
        stats = Stats()
        hier = MemoryHierarchy(MemoryConfig(), stats)
        base = 0x40_0000
        for i in range(12):
            hier.load(base - 64 * i, i * 200)
        assert stats.get("prefetches_issued") > 0

    def test_stream_table_capacity_evicts(self):
        cfg = MemoryConfig(prefetcher_streams=2)
        stats = Stats()
        hier = MemoryHierarchy(cfg, stats)
        # Touch four distinct regions; the table holds only two.
        for r in range(4):
            hier.load(0x10_0000 + r * 0x10_0000, r * 500)
        assert len(hier.prefetcher.table) <= 2


class TestBranchPersonalities:
    def test_loop_branches_mostly_taken(self):
        profile = WorkloadProfile(name="loopy", seed=5, loop_block_frac=0.9,
                                  loop_reps_mean=6, br_random_frac=0.0)
        trace = SyntheticWorkload(profile).generate(4000)
        branches = [d for d in trace if d.is_branch]
        taken = sum(1 for d in branches if d.taken)
        assert taken / len(branches) > 0.5

    def test_pattern_branches_periodic(self):
        profile = WorkloadProfile(name="pat", seed=6, loop_block_frac=0.0,
                                  br_random_frac=0.0, br_pattern_frac=1.0,
                                  br_pattern_period=4)
        workload = SyntheticWorkload(profile)
        assert any(b.br_kind == BR_PATTERN for b in workload.blocks)
        trace = workload.generate(4000)
        # Per static pattern branch, the outcome sequence repeats with the
        # profile period across outer iterations.
        outcomes = {}
        for d in trace:
            if d.is_branch:
                outcomes.setdefault(d.pc, []).append(d.taken)
        periodic = 0
        for pc, seq in outcomes.items():
            if len(seq) >= 8 and seq[:4] == seq[4:8]:
                periodic += 1
        assert periodic > 0


class TestOscaConfiguration:
    def test_granule_is_configurable(self):
        from repro.cores.casino.osca import Osca
        coarse = Osca(entries=64, granule=64)
        coarse.inc(0x100, 8)
        # Whole line maps to one granule: neighbouring words alias.
        assert coarse.outstanding(0x120, 8) == 1
        fine = Osca(entries=64, granule=4)
        fine.inc(0x100, 8)
        assert fine.outstanding(0x120, 8) == 0

    def test_core_respects_configured_entries(self):
        from repro.cores import build_core
        cfg = dataclasses.replace(make_casino_config(), osca_entries=16)
        core = build_core(cfg)
        core.reset([])
        assert core.lsu.osca.entries == 16


class TestExperimentMains:
    """main() printers run end-to-end on a stubbed runner (no heavy sim)."""

    def test_fig9_main_smoke(self, capsys, monkeypatch):
        from repro.experiments import fig9_area_energy
        fake = {
            "ino": {"area_mm2": 1.0, "area_rel": 1.0, "energy_rel": 1.0,
                    "perf_rel": 1.0, "perf_per_area": 1.0,
                    "groups": {"fu": 1.0, "leakage": 1.0},
                    "area_groups": {"fu": 1.0}},
            "casino": {"area_mm2": 1.1, "area_rel": 1.06, "energy_rel": 1.24,
                       "perf_rel": 1.5, "perf_per_area": 1.4,
                       "groups": {"fu": 1.2, "leakage": 0.8},
                       "area_groups": {"fu": 1.1}},
        }
        monkeypatch.setattr(fig9_area_energy, "run", lambda: fake)
        fig9_area_energy.main()
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Energy breakdown" in out

    def test_fig2_main_smoke(self, capsys, monkeypatch):
        from repro.experiments import fig2_specino_potential
        monkeypatch.setattr(fig2_specino_potential, "run",
                            lambda: {"specino[2,1]": 1.5, "ooo": 1.77})
        fig2_specino_potential.main()
        out = capsys.readouterr().out
        assert "Figure 2" in out and "#" in out
