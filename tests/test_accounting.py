"""CPI-stack cycle accounting (repro.obs.accounting).

The load-bearing contracts:

* **identity** — the components sum exactly to the cycle count on every
  core model, kernel traces and synthetic apps alike (S4);
* **read-only** — an accounting-enabled run is bit-identical in simulated
  timing and final counters to a bare run;
* **semantics** — ``iq_head_blocked`` is structurally zero on the OoO
  core, and on memory-bound apps the in-order core's ``load_miss`` +
  ``iq_head_blocked`` cycles cover at least the cycles it loses to OoO
  (the paper's motivating gap);
* **sanitizer** — a mis-attributing observer trips ``check_accounting``.
"""

import pytest

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.cores import build_core
from repro.engine.core_base import SimulationError
from repro.obs.accounting import COMPONENTS, CycleAccounting, \
    format_stack_table
from repro.obs.provenance import counter_digest
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import kernel_trace
from repro.workloads.suite import SUITE
from tests.util import div, with_pcs

ALL_CORES = [make_ino_config, make_lsc_config, make_freeway_config,
             make_casino_config, make_ooo_config, make_specino_config]

KERNELS = [("pointer_chase", {"nodes": 64, "hops": 256}),
           ("daxpy", {"n": 128, "passes": 2}),
           ("histogram", {"n": 256})]

APPS = ["mcf", "hmmer"]


def _app_trace(app, n=2_000):
    return SyntheticWorkload(SUITE[app]).generate(n)


def _run(make_cfg, trace, **kwargs):
    core = build_core(make_cfg())
    acct = CycleAccounting()
    stats = core.run(trace, warm_icache=True, accounting=acct, **kwargs)
    return stats, acct


class TestIdentity:
    """S4: components sum exactly to total cycles, everywhere."""

    @pytest.mark.parametrize("make_cfg", ALL_CORES,
                             ids=lambda f: f.__name__)
    @pytest.mark.parametrize("kernel,kwargs", KERNELS,
                             ids=[k for k, _ in KERNELS])
    def test_kernels(self, make_cfg, kernel, kwargs):
        stats, acct = _run(make_cfg, kernel_trace(kernel, **kwargs))
        assert acct.identity_error() is None
        assert sum(acct.components.values()) == acct.total_cycles
        assert acct.total_cycles == int(stats.cycles)

    @pytest.mark.parametrize("make_cfg", ALL_CORES,
                             ids=lambda f: f.__name__)
    @pytest.mark.parametrize("app", APPS)
    def test_synthetic_apps(self, make_cfg, app):
        stats, acct = _run(make_cfg, _app_trace(app))
        assert acct.identity_error() is None
        assert sum(acct.components.values()) == acct.total_cycles

    def test_identity_holds_under_sanitizer_and_warmup(self):
        trace = _app_trace("mcf")
        core = build_core(make_casino_config())
        acct = CycleAccounting()
        stats = core.run(trace, warmup=500, sanitize=True, accounting=acct)
        report = acct.report()
        assert report["identity_error"] is None
        # The report excludes warm-up, mirroring the engine's snapshot.
        assert report["total_cycles"] == int(stats.cycles)
        assert report["committed"] == int(stats.committed)
        assert sum(report["components"].values()) == report["total_cycles"]


class TestReadOnly:
    @pytest.mark.parametrize("make_cfg", ALL_CORES,
                             ids=lambda f: f.__name__)
    def test_timing_bit_identical(self, make_cfg):
        trace = _app_trace("mcf")
        bare = build_core(make_cfg()).run(trace, warm_icache=True)
        observed, _ = _run(make_cfg, trace)
        assert int(observed.cycles) == int(bare.cycles)
        assert counter_digest(observed) == counter_digest(bare)


class TestSemantics:
    def test_ooo_never_head_blocked(self):
        _, acct = _run(make_ooo_config, _app_trace("mcf"))
        assert acct.components["iq_head_blocked"] == 0

    def test_inorder_head_blocked_on_dependent_code(self):
        # A dependent long-latency chain: while each 12-cycle divide
        # executes, the next divide sits unready at the queue head.
        chain = with_pcs([div(1)] + [div(1, (1,)) for _ in range(31)])
        _, acct = _run(make_ino_config, chain)
        assert acct.components["iq_head_blocked"] > 0

    @pytest.mark.parametrize("app", ["mcf", "cactusADM"])
    def test_memory_components_cover_the_ooo_gap(self, app):
        """The accounting must *explain* the in-order/OoO cycle gap:
        memory-side stalls (load_miss + iq_head_blocked) on InO are at
        least the cycles InO loses relative to OoO."""
        trace = _app_trace(app, n=4_000)
        ino_stats, ino_acct = _run(make_ino_config, trace)
        ooo_stats, _ = _run(make_ooo_config, trace)
        gap = int(ino_stats.cycles) - int(ooo_stats.cycles)
        assert gap > 0
        explained = (ino_acct.components["load_miss"]
                     + ino_acct.components["iq_head_blocked"])
        assert explained >= gap

    def test_casino_hides_head_blocking_vs_inorder(self):
        trace = _app_trace("cactusADM", n=4_000)
        _, ino_acct = _run(make_ino_config, trace)
        _, casino_acct = _run(make_casino_config, trace)
        assert (casino_acct.components["iq_head_blocked"]
                < ino_acct.components["iq_head_blocked"])

    def test_report_and_table(self):
        _, acct = _run(make_casino_config, _app_trace("hmmer"))
        report = acct.report()
        assert set(report["cpi_stack"]) == set(COMPONENTS)
        assert report["cpi"] == pytest.approx(
            sum(report["cpi_stack"].values()))
        assert abs(sum(report["fractions"].values()) - 1.0) < 1e-9
        headers, rows = format_stack_table({"casino": report})
        assert headers[0] == "core" and rows[0][0] == "casino"


class TestSanitizerIntegration:
    def test_misattribution_trips_the_sanitizer(self):
        class Broken(CycleAccounting):
            def on_cycle(self, core, cycle):
                super().on_cycle(core, cycle)
                if cycle == 100:          # drop a cycle: identity broken
                    self.components["base"] -= 1

        core = build_core(make_ino_config())
        with pytest.raises(SimulationError, match="accounting"):
            core.run(_app_trace("hmmer"), sanitize=True,
                     accounting=Broken())
