"""Write-ahead journal: framing, rotation, compaction, damage tolerance,
and the replay fold."""

import json

import pytest

from repro.service.journal import (
    JOURNAL_SCHEMA,
    TERMINAL_STATES,
    Journal,
    fold_jobs,
)


class TestAppendReplay:
    def test_roundtrip_preserves_records_and_order(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("submitted", job="job-1", key="aa", priority=5)
        journal.append("leased", job="job-1", attempt=1)
        journal.append("done", job="job-1")
        journal.close()

        replayed = list(Journal(tmp_path).records())
        assert [r["t"] for r in replayed] == ["submitted", "leased", "done"]
        assert replayed[0]["key"] == "aa" and replayed[0]["priority"] == 5
        assert [r["seq"] for r in replayed] == [1, 2, 3]

    def test_seq_continues_across_reopen(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("submitted", job="job-1")
        journal.close()
        reopened = Journal(tmp_path)
        assert reopened.append("done", job="job-1") == 2

    def test_unknown_record_type_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path).append("exploded", job="job-1")

    def test_bad_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path, sync="sometimes")

    def test_sync_policies_all_write(self, tmp_path):
        for sync in ("always", "batch", "off"):
            journal = Journal(tmp_path / sync, sync=sync)
            journal.append("submitted", job="job-1")
            journal.close()
            assert len(list(Journal(tmp_path / sync).records())) == 1


class TestSegments:
    def test_rotation_splits_segments_and_replays_across(self, tmp_path):
        journal = Journal(tmp_path, max_segment_bytes=256)
        for i in range(20):
            journal.append("submitted", job=f"job-{i}")
        journal.close()
        assert len(journal.segments()) > 1
        replayed = list(Journal(tmp_path).records())
        assert [r["job"] for r in replayed] == \
            [f"job-{i}" for i in range(20)]

    def test_compaction_keeps_only_live_records(self, tmp_path):
        journal = Journal(tmp_path, max_segment_bytes=256)
        for i in range(20):
            journal.append("submitted", job=f"job-{i}")
            journal.append("done", job=f"job-{i}")
        journal.compact([{"t": "submitted", "job": "job-open", "key": "ff"}])
        assert len(journal.segments()) == 1
        # Appends after compaction land in the same (fresh) segment.
        journal.append("leased", job="job-open")
        journal.close()
        replayed = list(Journal(tmp_path).records())
        assert [(r["t"], r["job"]) for r in replayed] == \
            [("submitted", "job-open"), ("leased", "job-open")]

    def test_compaction_rejects_unknown_type(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path).compact([{"t": "nonsense"}])


class TestDamageTolerance:
    def _segment(self, journal):
        (segment, ) = journal.segments()
        return segment

    def test_torn_tail_detected_and_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("submitted", job="job-1")
        journal.append("submitted", job="job-2")
        journal.close()
        segment = self._segment(journal)
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-10])  # tear the final record

        reopened = Journal(tmp_path)
        replayed = list(reopened.records())
        assert [r["job"] for r in replayed] == ["job-1"]
        assert reopened.stats["torn_tail"] == 1
        assert reopened.stats["corrupt_skipped"] == 0

    def test_mid_file_bit_flip_skips_only_that_record(self, tmp_path):
        journal = Journal(tmp_path)
        for i in range(3):
            journal.append("submitted", job=f"job-{i}")
        journal.close()
        segment = self._segment(journal)
        lines = segment.read_bytes().splitlines(keepends=True)
        middle = bytearray(lines[1])
        # flip one bit inside the record payload, not the framing
        offset = middle.find(b"job-1") + 1
        middle[offset] ^= 0x01
        segment.write_bytes(lines[0] + bytes(middle) + lines[2])

        reopened = Journal(tmp_path)
        replayed = list(reopened.records())
        assert [r["job"] for r in replayed] == ["job-0", "job-2"]
        assert reopened.stats["corrupt_skipped"] == 1
        assert reopened.stats["torn_tail"] == 0

    def test_wrong_schema_treated_as_corrupt(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("submitted", job="job-1")
        journal.close()
        segment = self._segment(journal)
        alien = json.dumps({"crc": 0, "schema": JOURNAL_SCHEMA + 1,
                            "seq": 99, "rec": {"t": "done", "job": "x"}})
        with open(segment, "ab") as fh:
            fh.write(alien.encode() + b"\n")
        fresh = Journal(tmp_path)
        fresh.append("done", job="job-1")  # valid tail after the alien line
        fresh.close()
        reopened = Journal(tmp_path)
        assert [r["t"] for r in reopened.records()] == ["submitted", "done"]
        assert reopened.stats["corrupt_skipped"] == 1


class TestFoldJobs:
    def test_lifecycle_folds_to_final_state(self):
        records = [
            {"t": "submitted", "job": "a", "key": "k1", "priority": 7,
             "spec": {"n_instrs": 5}},
            {"t": "leased", "job": "a", "attempt": 1},
            {"t": "heartbeat", "leases": 1},
            {"t": "submitted", "job": "b", "key": "k2"},
            {"t": "done", "job": "a"},
            {"t": "leased", "job": "b", "attempt": 2},
        ]
        folded = fold_jobs(records)
        assert folded["a"]["status"] == "done"
        assert folded["a"]["priority"] == 7
        assert folded["a"]["spec"] == {"n_instrs": 5}
        assert folded["b"]["status"] == "leased"
        assert folded["b"]["attempts"] == 2

    def test_terminal_states_never_regress(self):
        records = [
            {"t": "submitted", "job": "a", "key": "k1"},
            {"t": "dead_letter", "job": "a", "error": "poison"},
            {"t": "leased", "job": "a", "attempt": 9},
            {"t": "done", "job": "a"},
        ]
        folded = fold_jobs(records)
        assert folded["a"]["status"] == "dead_letter"
        assert folded["a"]["error"] == "poison"
        assert folded["a"]["status"] in TERMINAL_STATES

    def test_records_without_submission_are_dropped(self):
        folded = fold_jobs([{"t": "done", "job": "ghost"},
                            {"t": "leased", "job": "ghost"}])
        assert folded == {}
