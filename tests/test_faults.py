"""Fault injection: prove the watchdog / program-order / budget detectors
fire with actionable diagnostics on every core model, instead of hanging."""

import dataclasses

import pytest

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.cores import build_core
from repro.engine.core_base import SimulationError
from repro.engine.faults import FAULT_KINDS, Fault, FaultInjector
from tests.util import alu, serial_chain, with_pcs

ALL_CONFIGS = [make_ino_config, make_lsc_config, make_freeway_config,
               make_specino_config, make_casino_config, make_ooo_config]
IDS = [make().name for make in ALL_CONFIGS]


def run_with_faults(cfg, insts, faults, deadlock_cycles=2_000,
                    max_cycles=500_000):
    core = build_core(cfg)
    injector = FaultInjector(faults)
    stats = core.run(with_pcs(insts), max_cycles=max_cycles,
                     warm_icache=True, faults=injector,
                     deadlock_cycles=deadlock_cycles)
    return stats, core, injector


def test_fault_kind_validated():
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault("bitrot", 3)
    for kind in FAULT_KINDS:
        assert Fault(kind, 3).kind == kind


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_drop_wakeup_trips_watchdog(make):
    """A lost wakeup must deadlock the dependence chain, and the watchdog
    must convert the hang into a structured SimulationError."""
    with pytest.raises(SimulationError) as err:
        run_with_faults(make(), serial_chain(200),
                        [Fault("drop_wakeup", seq=50)])
    details = err.value.details
    assert details["check"] == "deadlock_watchdog"
    assert details["core"] == make().name
    assert details["cycle"] > 0
    assert details["debug"], "diagnostic must include the core debug state"


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_stuck_fill_trips_watchdog(make):
    """A completion that never arrives stalls commit; watchdog must fire."""
    with pytest.raises(SimulationError) as err:
        run_with_faults(make(), serial_chain(200),
                        [Fault("stuck_fill", seq=50)])
    assert err.value.details["check"] == "deadlock_watchdog"
    assert err.value.details["debug"]


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_skip_commit_breaks_program_order(make):
    """A skipped sequence number must never be silently retired: either the
    program-order assert fires at commit, or a core that keys its commit
    stream on seq stalls waiting for the hole and the watchdog catches it."""
    with pytest.raises(SimulationError) as err:
        run_with_faults(make(), serial_chain(200),
                        [Fault("skip_commit", seq=20)])
    details = err.value.details
    assert details["check"] in ("program_order", "deadlock_watchdog")
    if details["check"] == "program_order":
        assert details["expected"] == 20
        assert details["got"] == 21
    assert details["debug"]


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_cycle_budget_overrun_reports_debug_state(make):
    """Exceeding max_cycles raises (not hangs) and the message carries the
    core's debug snapshot so the stall is diagnosable post-mortem."""
    core = build_core(make())
    with pytest.raises(SimulationError) as err:
        core.run(with_pcs(serial_chain(5_000)), max_cycles=20,
                 warm_icache=True)
    details = err.value.details
    assert details["check"] == "cycle_budget"
    assert details["debug"]
    assert details["debug"] in str(err.value)


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_debug_state_nonempty_mid_run(make):
    """Every core must expose a non-empty _debug_state() while in flight."""
    core = build_core(make())
    try:
        core.run(with_pcs(serial_chain(5_000)), max_cycles=50,
                 warm_icache=True)
    except SimulationError:
        pass
    assert core._debug_state() != ""


@pytest.mark.parametrize("make", ALL_CONFIGS, ids=IDS)
def test_deadlock_cycles_config_field(make):
    """The watchdog threshold is a config knob, not a hard-coded constant:
    a tiny threshold fires on a legal (just slow) dependence stall."""
    cfg = dataclasses.replace(make(), deadlock_cycles=1)
    trace = [alu(1)] + [alu(1, (1,)) for _ in range(10)]
    with pytest.raises(SimulationError) as err:
        core = build_core(cfg)
        core.run(with_pcs(trace), warm_icache=True)
    assert err.value.details["check"] == "deadlock_watchdog"


def test_run_deadlock_cycles_overrides_config():
    """run(deadlock_cycles=...) wins over cfg.deadlock_cycles."""
    cfg = dataclasses.replace(make_ino_config(), deadlock_cycles=1)
    core = build_core(cfg)
    stats = core.run(with_pcs(serial_chain(50)), warm_icache=True,
                     deadlock_cycles=10_000)
    assert stats.get("committed") == 50


def test_injector_bookkeeping():
    """Faults fire exactly once and report it."""
    faults = [Fault("drop_wakeup", seq=10)]
    with pytest.raises(SimulationError):
        run_with_faults(make_ooo_config(), serial_chain(100), faults)
    assert faults[0].fired
    assert FaultInjector(faults).all_fired
