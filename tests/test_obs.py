"""Observability layer (repro.obs): event tracer, metrics sampler,
Perfetto export, self-profiler and provenance manifests.

The load-bearing contract mirrors the sanitizer's: attaching any
observability instrument never changes a single timing statistic, and
with everything detached the seed code paths run unchanged (the
regression-band tests pin the actual figures).
"""

import dataclasses
import json

import pytest

from repro.common.params import (
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.cores import build_core
from repro.obs.events import EVENT_KINDS, Tracer
from repro.obs.metrics import MetricsSampler
from repro.obs.perfetto import build_trace, validate_trace
from repro.obs.profile import SelfProfiler
from repro.obs.provenance import (
    config_hash,
    counter_digest,
    git_rev,
    run_manifest,
)
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.suite import SUITE
from tests.util import alu, div, independent_ops, load, store, with_pcs

#: (core factory, app) — one app per core, per the acceptance criteria.
CORE_APPS = [
    (make_ino_config, "hmmer"),
    (make_casino_config, "mcf"),
    (make_ooo_config, "milc"),
]


def _workload(app, n=2_000):
    return SyntheticWorkload(SUITE[app]).generate(n)


def _traced_run(make_cfg, app, n=2_000, **kwargs):
    core = build_core(make_cfg())
    tracer = Tracer()
    stats = core.run(_workload(app, n), record_schedule=True,
                     tracer=tracer, **kwargs)
    return core, tracer, stats


# -- tracer unit behaviour ----------------------------------------------------

class TestTracer:
    def test_kind_filter(self):
        tracer = Tracer(kinds=["issue"])
        tracer.emit("issue", 3, 0)
        tracer.emit("commit", 4, 0)
        assert [e.kind for e in tracer.events()] == ["issue"]

    def test_seq_range_filter(self):
        tracer = Tracer(seq_min=10, seq_max=12)
        for seq in range(20):
            tracer.emit("commit", seq, seq)
        assert [e.seq for e in tracer.events()] == [10, 11, 12]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tracer(kinds=["frobnicate"])

    def test_ring_buffer_bounds_and_counts_drops(self):
        tracer = Tracer(capacity=8)
        for cycle in range(20):
            tracer.emit("issue", cycle, cycle)
        assert len(tracer) == 8
        assert tracer.emitted == 20
        assert tracer.dropped == 12
        assert [e.cycle for e in tracer.events()] == list(range(12, 20))

    def test_events_sorted_by_cycle(self):
        tracer = Tracer()
        tracer.emit("execute_done", 9, 0)   # stamped in the future
        tracer.emit("issue", 4, 1)
        assert [e.cycle for e in tracer.events()] == [4, 9]

    def test_events_for_one_seq(self):
        tracer = Tracer()
        tracer.emit("dispatch", 0, 7)
        tracer.emit("issue", 3, 7)
        tracer.emit("issue", 3, 8)
        assert [e.kind for e in tracer.events_for(7)] == ["dispatch", "issue"]


# -- traced runs on the real cores --------------------------------------------

class TestTracedRuns:
    @pytest.mark.parametrize("make_cfg,app", CORE_APPS)
    def test_stream_nonempty_and_monotonic(self, make_cfg, app):
        _, tracer, stats = _traced_run(make_cfg, app)
        events = tracer.events()
        assert events, "traced run produced no events"
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
        for kind in ("dispatch", "wakeup", "issue", "execute_done",
                     "commit"):
            assert tracer.counts.get(kind, 0) > 0

    @pytest.mark.parametrize("make_cfg,app", CORE_APPS)
    def test_commit_events_match_counter(self, make_cfg, app):
        _, tracer, stats = _traced_run(make_cfg, app)
        assert tracer.counts["commit"] == int(stats.committed)

    @pytest.mark.parametrize("make_cfg,app", CORE_APPS)
    def test_observability_does_not_change_timing(self, make_cfg, app):
        """Tracer + sampler + profiler attached => bit-identical stats."""
        bare = build_core(make_cfg())
        plain = bare.run(_workload(app)).as_dict()
        observed = build_core(make_cfg())
        instrumented = observed.run(
            _workload(app), record_schedule=True, tracer=Tracer(),
            sampler=MetricsSampler(interval=64),
            profiler=SelfProfiler()).as_dict()
        assert instrumented == plain

    def test_casino_promotions_match_siq_passes(self):
        _, tracer, stats = _traced_run(make_casino_config, "mcf")
        assert tracer.counts.get("siq_promote", 0) == stats["siq_passes"]

    def test_cache_miss_events_on_memory_bound_app(self):
        _, tracer, stats = _traced_run(make_casino_config, "mcf")
        assert tracer.counts.get("cache_miss", 0) > 0

    def test_ooo_violation_and_squash_events(self):
        cfg = dataclasses.replace(make_ooo_config(), store_sets=False)
        core = build_core(cfg)
        tracer = Tracer()
        trace = with_pcs([div(1), store(1, 14, 0xC000),
                          load(2, 15, 0xC000), alu(3, (2,))]
                         + independent_ops(8, start_reg=4))
        stats = core.run(trace, warm_icache=True, tracer=tracer)
        assert stats.get("mem_order_violations") >= 1
        assert tracer.counts.get("storeset_violation", 0) >= 1
        assert tracer.counts.get("squash", 0) == stats.get("squashes")

    def test_wakeup_precedes_issue(self):
        _, tracer, _ = _traced_run(make_casino_config, "mcf", n=500)
        by_seq = {}
        for event in tracer.events():
            by_seq.setdefault(event.seq, {})[event.kind] = event.cycle
        checked = 0
        for seq, kinds in by_seq.items():
            if "wakeup" in kinds and "issue" in kinds:
                assert kinds["wakeup"] <= kinds["issue"]
                checked += 1
        assert checked > 0

    def test_detached_by_default(self):
        core = build_core(make_ino_config())
        core.run(_workload("hmmer", 500))
        assert core.tracer is None and core.sampler is None


# -- metrics sampler -----------------------------------------------------------

class TestMetricsSampler:
    def _sampled_run(self, interval=50):
        core = build_core(make_casino_config())
        sampler = MetricsSampler(interval=interval)
        stats = core.run(_workload("mcf"), sampler=sampler)
        return sampler, stats

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval=0)

    def test_samples_cover_the_run(self):
        sampler, stats = self._sampled_run()
        cycles = sampler.cycles()
        assert cycles and cycles == sorted(cycles)
        assert cycles[-1] == int(stats.cycles)
        assert sum(sampler.series("committed")) == stats.committed

    def test_ipc_series_bounded(self):
        sampler, _ = self._sampled_run()
        width = make_casino_config().width
        assert all(0.0 <= ipc <= width for ipc in sampler.series("ipc"))

    def test_occupancy_within_capacity(self):
        sampler, _ = self._sampled_run()
        for name, bins in sampler.occupancy_histograms().items():
            assert sum(bins.values()) == len(sampler.samples)
            assert max(bins) <= sampler.capacity[name]
            assert min(bins) >= 0

    def test_stall_breakdown_matches_final_counters(self):
        sampler, stats = self._sampled_run()
        for reason, total in sampler.stall_breakdown().items():
            assert total == stats[reason]

    def test_report_is_json_exportable(self, tmp_path):
        from repro.harness.export import write_json
        sampler, _ = self._sampled_run()
        path = tmp_path / "metrics.json"
        write_json(sampler.report(), path)
        loaded = json.loads(path.read_text())
        assert loaded["n_samples"] == len(sampler.samples)


# -- Perfetto export -----------------------------------------------------------

class TestPerfetto:
    def _doc(self, make_cfg=make_casino_config, app="mcf"):
        core = build_core(make_cfg())
        tracer = Tracer()
        sampler = MetricsSampler(interval=50)
        core.run(_workload(app), record_schedule=True, tracer=tracer,
                 sampler=sampler)
        return build_trace(core.schedule, tracer=tracer, sampler=sampler,
                           core_name=make_cfg().name)

    @pytest.mark.parametrize("make_cfg,app", CORE_APPS)
    def test_valid_for_every_core(self, make_cfg, app):
        doc = self._doc(make_cfg, app)
        assert doc["traceEvents"]
        assert validate_trace(doc) == []

    def test_three_phases_per_issued_instruction(self):
        doc = self._doc()
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        cats = {e["cat"] for e in slices}
        assert cats == {"wait", "exec", "retire"}

    def test_counter_tracks_present(self):
        doc = self._doc()
        counters = {e["name"] for e in doc["traceEvents"]
                    if e["ph"] == "C"}
        assert "ipc" in counters
        assert any(name.startswith("occ ") for name in counters)

    def test_json_serialisable(self, tmp_path):
        doc = self._doc()
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc))
        assert json.loads(path.read_text())["traceEvents"]

    def test_validator_rejects_garbage(self):
        assert validate_trace({}) != []
        assert validate_trace({"traceEvents": "nope"}) != []
        bad_dur = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1,
             "name": "x"}]}
        assert validate_trace(bad_dur) != []
        overlap = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 5, "name": "a"},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 3, "dur": 5, "name": "b"},
        ]}
        assert validate_trace(overlap) != []

    def test_validator_accepts_proper_nesting(self):
        nested = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 10, "name": "a"},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 2, "dur": 3, "name": "b"},
        ]}
        assert validate_trace(nested) == []

    def test_legacy_six_field_schedule_rows(self):
        """Schedules recorded before dispatch_at was added (6-tuples)
        still export cleanly."""
        core, tracer, _ = _traced_run(make_ino_config, "hmmer", n=500)
        legacy = [row[:6] for row in core.schedule]
        doc = build_trace(legacy, tracer=tracer, core_name="ino")
        assert validate_trace(doc) == []
        assert doc["traceEvents"]

    def test_wait_only_instruction_renders(self):
        """A schedule row that never issued still gets a lifetime slice."""
        trace = with_pcs([alu(1)])
        entry = (0, trace[0], None, None, 9, False)
        doc = build_trace([entry])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1 and slices[0]["cat"] == "wait"
        assert validate_trace(doc) == []


# -- self-profiler -------------------------------------------------------------

class TestSelfProfiler:
    @pytest.mark.parametrize("make_cfg,app", CORE_APPS)
    def test_components_cover_wall_time(self, make_cfg, app):
        profiler = SelfProfiler()
        core = build_core(make_cfg())
        core.run(_workload(app), profiler=profiler)
        assert profiler.wall > 0
        assert profiler.accounted() >= 0.9 * profiler.wall
        components = dict(profiler.self_time)
        for expected in ("commit", "dispatch", "fetch", "run_loop"):
            assert expected in components

    def test_report_format(self):
        profiler = SelfProfiler()
        core = build_core(make_casino_config())
        core.run(_workload("mcf", 500), profiler=profiler)
        report = profiler.report()
        assert "self-profile" in report
        assert "components cover" in report
        assert "schedule" in report

    def test_nested_scopes_account_self_time(self):
        profiler = SelfProfiler()
        profiler._enter("outer")
        profiler._enter("inner")
        profiler._exit()
        profiler._exit()
        assert profiler.calls == {"outer": 1, "inner": 1}
        # Self times are disjoint: outer excludes inner's elapsed time.
        assert profiler.self_time["outer"] >= 0
        assert profiler.self_time["inner"] >= 0


# -- provenance ----------------------------------------------------------------

class TestProvenance:
    def test_config_hash_stable_and_sensitive(self):
        assert config_hash(make_casino_config()) == \
            config_hash(make_casino_config())
        widened = dataclasses.replace(make_casino_config(), width=4)
        assert config_hash(widened) != config_hash(make_casino_config())

    def test_counter_digest_tracks_stats(self):
        core = build_core(make_ino_config())
        stats = core.run(_workload("hmmer", 500))
        again = build_core(make_ino_config()).run(_workload("hmmer", 500))
        assert counter_digest(stats) == counter_digest(again)

    def test_manifest_fields(self):
        core = build_core(make_casino_config())
        stats = core.run(_workload("mcf", 500))
        manifest = run_manifest(make_casino_config(), SUITE["mcf"],
                                stats=stats, wall_time=0.25)
        assert manifest["core"] == make_casino_config().name
        assert manifest["app"] == "mcf"
        assert manifest["trace_seed"] == SUITE["mcf"].seed
        assert manifest["wall_time_s"] == 0.25
        assert len(manifest["config_hash"]) == 12
        assert len(manifest["counter_digest"]) == 16
        assert isinstance(git_rev(), str) and git_rev()

    def test_failure_records_carry_manifest(self):
        """ResilientRunner failures are attributable after the fact."""
        from repro.engine.faults import Fault, FaultInjector
        from repro.harness.resilience import ResilientRunner
        runner = ResilientRunner(
            n_instrs=1_500, warmup=0, retries=0,
            fault_hook=lambda cfg, profile: FaultInjector(
                [Fault("drop_wakeup", seq=40)]))
        result = runner.run(make_casino_config(), SUITE["mcf"])
        assert result.failed
        assert runner.failures
        manifest = runner.failures[0].manifest
        assert manifest["app"] == "mcf"
        assert manifest["config_hash"] == config_hash(make_casino_config())

    def test_manifest_stable_across_fresh_runners(self):
        """S3: same config + seed => identical provenance (config hash
        and counter digest) from two independent Runner instances."""
        from repro.harness.runner import Runner

        def manifest_of():
            runner = Runner(n_instrs=1_500, warmup=300)
            result = runner.run(make_casino_config(), SUITE["mcf"])
            return run_manifest(result.core, SUITE["mcf"],
                                stats=result.stats)
        first, second = manifest_of(), manifest_of()
        assert first["config_hash"] == second["config_hash"]
        assert first["counter_digest"] == second["counter_digest"]
        assert first["trace_seed"] == second["trace_seed"]

    def test_checkpoint_stores_manifest(self, tmp_path):
        from repro.harness.resilience import SweepCheckpoint
        path = tmp_path / "sweep.ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.put("Figure 6", {"casino": 1.5},
                 manifest={"git_rev": "abc", "wall_time_s": 1.0})
        reloaded = SweepCheckpoint(path)
        assert reloaded.get("Figure 6")["manifest"]["git_rev"] == "abc"

    def test_manifest_carries_interpreter_identity(self):
        """S1: manifests pin the Python version and platform tag, under
        schema 2."""
        import platform as platform_mod

        from repro.obs.provenance import MANIFEST_SCHEMA, interpreter_tag
        manifest = run_manifest(make_casino_config())
        assert manifest["schema"] == MANIFEST_SCHEMA == 2
        assert manifest["python"] == platform_mod.python_version()
        assert manifest["platform"] == interpreter_tag()

    def test_interpreter_tag_shape(self):
        import sys

        from repro.obs.provenance import interpreter_tag
        tag = interpreter_tag()
        assert tag == tag.lower()
        assert platform_version_in_tag(tag)
        assert sys.platform in tag

    def test_manifest_digest_identity(self):
        """The digest is stable, ignores wall time, and is sensitive to
        every identity field (interpreter included)."""
        from repro.obs.provenance import manifest_digest
        manifest = run_manifest(make_casino_config(), SUITE["mcf"])
        assert manifest_digest(manifest) == manifest_digest(dict(manifest))
        timed = dict(manifest, wall_time_s=12.5)
        assert manifest_digest(timed) == manifest_digest(manifest)
        for field, value in (("platform", "other-interp"),
                             ("git_rev", "deadbeef"),
                             ("trace_seed", 424242),
                             ("python", "2.7.18")):
            changed = dict(manifest)
            changed[field] = value
            assert manifest_digest(changed) != manifest_digest(manifest), \
                field


def platform_version_in_tag(tag: str) -> bool:
    import platform as platform_mod
    return platform_mod.python_version() in tag
