"""Schedule recording and timeline rendering."""

import pytest

from repro.common.params import make_casino_config, make_ino_config, make_ooo_config
from repro.cores import build_core
from repro.harness.timeline import issue_order, render_timeline
from tests.util import alu, div, independent_ops, with_pcs


def _snippet():
    return with_pcs([div(1), alu(2, (1,))] + independent_ops(6, start_reg=3))


class TestScheduleRecording:
    def test_disabled_by_default(self):
        core = build_core(make_ino_config())
        core.run(_snippet(), warm_icache=True)
        assert core.schedule is None

    def test_one_entry_per_commit(self):
        core = build_core(make_ino_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        assert len(core.schedule) == 8
        assert [e[0] for e in core.schedule] == list(range(8))

    def test_commit_times_monotone(self):
        core = build_core(make_casino_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        commits = [e[4] for e in core.schedule]
        assert commits == sorted(commits)

    def test_ino_issue_order_is_program_order(self):
        core = build_core(make_ino_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        assert issue_order(core.schedule) == list(range(8))

    def test_ooo_issues_past_the_stall(self):
        core = build_core(make_ooo_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        order = issue_order(core.schedule)
        # The divider's consumer (seq 1) issues after the independent work.
        assert order.index(1) > order.index(2)

    def test_casino_matches_ooo_schedule_shape(self):
        ooo = build_core(make_ooo_config())
        ooo.run(_snippet(), warm_icache=True, record_schedule=True)
        cas = build_core(make_casino_config())
        cas.run(_snippet(), warm_icache=True, record_schedule=True)
        assert issue_order(cas.schedule)[-1] == 1  # chain consumer last
        assert issue_order(ooo.schedule)[-1] == 1


class TestRendering:
    def test_render_contains_markers(self):
        core = build_core(make_ino_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        text = render_timeline(core.schedule)
        assert "i" in text and "C" in text
        assert text.count("\n") == 8  # header + one row per instruction

    def test_render_empty(self):
        assert render_timeline([]) == "(empty schedule)"

    def test_spec_tagging(self):
        core = build_core(make_casino_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        tagged = render_timeline(core.schedule, tag_spec=True)
        assert "*" in tagged

    def test_scaling_long_runs(self):
        trace = with_pcs([div(i % 8 + 1) for i in range(40)])
        core = build_core(make_ino_config())
        core.run(trace, warm_icache=True, record_schedule=True)
        text = render_timeline(core.schedule, width=32)
        assert "cycles/char" in text.splitlines()[0]

    def test_windowing(self):
        core = build_core(make_ino_config())
        core.run(_snippet(), warm_icache=True, record_schedule=True)
        text = render_timeline(core.schedule, first=4, count=2)
        assert text.count("\n") == 2


class TestEdgeCases:
    """Hand-built schedule entries exercising the degenerate shapes a
    squash-heavy or partially-recorded run can produce."""

    def _entry(self, seq, issue_at, done_at, commit_at):
        inst = with_pcs([alu(seq % 8 + 1)])[0]
        return (seq, inst, issue_at, done_at, commit_at, False)

    def test_window_where_nothing_issued(self):
        """No ValueError when no entry in the window ever issued."""
        window = [self._entry(0, None, None, 5),
                  self._entry(1, None, None, 9)]
        text = render_timeline(window)
        lines = text.splitlines()
        assert lines[0].startswith("cycles 5..9")
        assert all("C" in line for line in lines[1:])
        assert "i" not in "".join(line.split("|")[1] for line in lines[1:])

    def test_issued_but_never_done_renders_wait_only(self):
        """issue_at set with done_at None marks issue, skips exec bar."""
        window = [self._entry(0, 3, None, 12),
                  self._entry(1, 4, 10, 12)]
        text = render_timeline(window)
        row0 = text.splitlines()[1]
        cells = row0.split("|")[1]
        assert "i" in cells and "C" in cells
        assert "D" not in cells and "=" not in cells

    def test_span_covers_done_beyond_last_issue(self):
        window = [self._entry(0, 2, 30, 31)]
        text = render_timeline(window, width=64)
        assert text.splitlines()[0].startswith("cycles 2..31")

    def test_single_wait_only_entry(self):
        assert "C" in render_timeline([self._entry(0, None, None, 0)])


class TestIssueOrder:
    def _entry(self, seq, issue_at):
        inst = with_pcs([alu(seq % 8 + 1)])[0]
        return (seq, inst, issue_at, issue_at, issue_at + 1, False)

    def test_ties_break_in_program_order(self):
        schedule = [self._entry(2, 5), self._entry(0, 5),
                    self._entry(1, 3)]
        assert issue_order(schedule) == [1, 0, 2]

    def test_unissued_entries_are_dropped(self):
        inst = with_pcs([alu(1)])[0]
        schedule = [(0, inst, None, None, 4, False), self._entry(1, 2)]
        assert issue_order(schedule) == [1]
