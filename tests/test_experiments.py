"""Experiment drivers: structure and headline shapes on a tiny app subset.

These use short traces (6k instrs, 3 apps) so they stay test-speed; the
full-suite numbers live in the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig2_specino_potential,
    fig6_ipc,
    fig7_renaming,
    fig8_memdisambig,
    fig9_area_energy,
    fig10_design_space,
    fig11_wider_issue,
)
from repro.harness.runner import Runner
from repro.workloads import get_profile

APPS = ("hmmer", "mcf", "milc")


@pytest.fixture(scope="module")
def runner():
    return Runner(n_instrs=6000, warmup=1500)


@pytest.fixture(scope="module")
def profiles():
    return [get_profile(a) for a in APPS]


class TestFig2:
    def test_orderings(self, runner, profiles):
        out = fig2_specino_potential.run(runner, profiles)
        assert out["ooo"] > out["specino[2,1]"] > 1.0
        assert out["specino[2,1]"] > out["specino[2,1]-nonmem"]


class TestFig6:
    def test_structure_and_geomeans(self, runner, profiles):
        out = fig6_ipc.run(runner, profiles)
        assert set(out) == {"lsc", "freeway", "casino", "ooo"}
        for model in out.values():
            assert "geomean" in model
            assert set(model) == {*APPS, "geomean"}
        assert out["ooo"]["geomean"] > out["casino"]["geomean"] > 1.0


class TestFig7:
    def test_conditional_beats_conventional(self, runner, profiles):
        out = fig7_renaming.run(runner, profiles)
        cond, conv = out["ConD[32,14]"], out["ConV[32,14]"]
        assert cond["speedup"] >= 1.0
        assert cond["allocs_per_cycle"] < conv["allocs_per_cycle"]
        big = out["ConV[48,24]"]
        assert big["allocs_per_cycle"] > cond["allocs_per_cycle"]


class TestFig8:
    def test_scheme_shapes(self, runner, profiles):
        out = fig8_memdisambig.run(runner, profiles)
        assert out["agi_ordering"]["perf"] < 1.0           # ~-11% in paper
        assert out["agi_ordering"]["violations"] == 0
        assert out["nolq"]["sq_searches"] > 1.0            # +31% in paper
        assert out["nolq_osca"]["sq_searches"] < out["nolq"]["sq_searches"]
        assert out["nolq_osca"]["efficiency"] >= out["nolq"]["efficiency"]
        assert out["nolq_osca"]["lq_ops"] == 0.0


class TestFig9:
    def test_area_and_energy_shapes(self, runner, profiles):
        out = fig9_area_energy.run(runner, profiles)
        assert out["casino"]["area_rel"] < out["ooo"]["area_rel"]
        assert 1.0 < out["casino"]["energy_rel"] < out["ooo"]["energy_rel"]
        assert out["casino"]["perf_per_area"] > 1.0
        assert out["ooo+nolq"]["energy_rel"] <= out["ooo"]["energy_rel"]


class TestFig10:
    def test_iq_sweep_shapes(self, runner, profiles):
        out = fig10_design_space.run_iq_sweep(runner, profiles)
        assert set(out) == set(fig10_design_space.IQ_SIZES)
        # Issue fraction grows with IQ size (paper's Figure 10a trend).
        fracs = [out[n]["iq_issue_frac"] for n in fig10_design_space.IQ_SIZES]
        assert fracs[-1] > fracs[0]
        # Performance improves from the smallest IQ.
        assert out[12]["speedup"] > 1.0

    def test_ws_so_sweep(self, runner, profiles):
        out = fig10_design_space.run_ws_so_sweep(runner, profiles)
        assert out[(1, 1)] == 1.0
        assert out[(2, 1)] > 1.0  # [2,1] beats [1,1]


class TestFig11:
    def test_width_scaling(self, runner, profiles):
        out = fig11_wider_issue.run(runner, profiles)
        assert out[("ino", 2)]["perf"] == 1.0
        for kind in ("ino", "casino", "ooo"):
            assert out[(kind, 4)]["perf"] >= out[(kind, 2)]["perf"]
        # CASINO keeps the best perf/energy at every width (the headline).
        for width in (2, 3, 4):
            assert out[("casino", width)]["per"] > out[("ooo", width)]["per"]
