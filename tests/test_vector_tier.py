"""The vectorized engine tier against the interpreted reference.

The tier's whole contract is *bit-identity*: same cycle counts, same
counter values and key sets, same schedules, same post-run structure
state — the kernel is purely a host-performance artifact.  This module
pins that contract across the kernelized cores, the auto-fallback
cores, the observer matrix, the ``REPRO_PURE_PY`` escape hatch, the
binary trace codec, and the ``__slots__`` layout of the hot
per-instruction classes.
"""

import dataclasses
import pickle

import pytest

from repro.common.params import (
    DISAMBIG_AGI_ORDERING,
    DISAMBIG_FULLY_OOO,
    DISAMBIG_NOLQ,
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
    make_specino_config,
)
from repro.cores import build_core
from repro.engine.core_base import SimulationError
from repro.engine.soatrace import (
    TraceArrays,
    TraceCodecError,
    decode_trace,
    encode_trace,
)
from repro.obs.provenance import counter_digest
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import daxpy_program, pointer_chase_program
from repro.workloads.suite import SUITE

N, WARMUP = 5_000, 800

_TRACES = {}


def _trace(app, n=N, seed=None):
    key = (app, n, seed)
    if key not in _TRACES:
        profile = SUITE[app]
        if seed is not None:
            profile = dataclasses.replace(profile, seed=seed)
        _TRACES[key] = SyntheticWorkload(profile).generate(n)
    return _TRACES[key]


def _run(cfg, trace, tier, ff, **kw):
    core = build_core(cfg)
    stats = core.run(trace, warmup=WARMUP, engine_tier=tier,
                     fast_forward=ff, record_schedule=True, **kw)
    return core, stats


def _assert_identical(cfg, trace, ff, expect_vector=True):
    """Pure vs vector run: every observable must match.

    Kernelized cores force ``engine_tier="vector"`` (which overrides
    ``REPRO_PURE_PY``, so the identity matrix still bites on the
    pure-py CI leg); fallback cores auto-select and must land pure.
    """
    pure_core, pure_stats = _run(cfg, trace, "pure", ff)
    auto_core, auto_stats = _run(cfg, trace,
                                 "vector" if expect_vector else None, ff)
    assert auto_core.engine_tier_used == (
        "vector" if expect_vector else "pure")
    pure_dict, auto_dict = pure_stats.as_dict(), auto_stats.as_dict()
    assert pure_dict == auto_dict, {
        k: (pure_dict.get(k), auto_dict.get(k))
        for k in set(pure_dict) | set(auto_dict)
        if pure_dict.get(k) != auto_dict.get(k)}
    assert counter_digest(pure_stats) == counter_digest(auto_stats)
    assert (pure_core.cycle, pure_core._committed, pure_core.ff_spans,
            pure_core.ff_skipped_cycles) == \
           (auto_core.cycle, auto_core._committed, auto_core.ff_spans,
            auto_core.ff_skipped_cycles)
    # Schedules: identical up to the DynInst column (shared objects).
    assert [(r[0],) + tuple(r[2:]) for r in pure_core.schedule] == \
           [(r[0],) + tuple(r[2:]) for r in auto_core.schedule]
    assert pure_core.stream.cursor == auto_core.stream.cursor
    assert pure_core.fetch.stalled_until == auto_core.fetch.stalled_until
    assert len(pure_core.fetch.queue) == len(auto_core.fetch.queue)


KERNEL_CORES = {"ino": make_ino_config, "casino": make_casino_config}
FALLBACK_CORES = {"ooo": make_ooo_config, "lsc": make_lsc_config,
                  "freeway": make_freeway_config,
                  "specino": make_specino_config}


class TestKernelBitIdentity:
    @pytest.mark.parametrize("ff", [True, False],
                             ids=["skip", "noskip"])
    @pytest.mark.parametrize("app", ["mcf", "hmmer", "libquantum",
                                     "omnetpp"])
    @pytest.mark.parametrize("core", sorted(KERNEL_CORES))
    def test_suite_apps(self, core, app, ff):
        _assert_identical(KERNEL_CORES[core](), _trace(app), ff)

    @pytest.mark.parametrize("mode", [DISAMBIG_NOLQ, DISAMBIG_FULLY_OOO,
                                      DISAMBIG_AGI_ORDERING])
    def test_casino_disambiguation_modes(self, mode):
        cfg = dataclasses.replace(make_casino_config(),
                                  name=f"casino-{mode}",
                                  disambiguation=mode)
        _assert_identical(cfg, _trace("mcf"), True)

    @pytest.mark.parametrize("maker", [pointer_chase_program,
                                       daxpy_program])
    def test_emulated_kernel_traces(self, maker):
        """Hand-written assembly kernels through the functional
        emulator drive both tiers identically (dependency-dense traces
        with shapes the synthetic generator never emits)."""
        from repro.isa.emulator import trace_program
        program, init = maker()
        trace = trace_program(program, init)
        for cfg in (make_ino_config(), make_casino_config()):
            _assert_identical(cfg, trace, True)

    def test_trace_arrays_input_accepted(self):
        """run() accepts the SoA twin directly in place of a list."""
        trace = _trace("hmmer")
        arrays = TraceArrays.from_instructions(trace)
        cfg = make_casino_config()
        base = build_core(cfg).run(trace, warmup=WARMUP)
        via_arrays = build_core(cfg).run(arrays, warmup=WARMUP)
        assert counter_digest(base) == counter_digest(via_arrays)


class TestTierSelection:
    def test_fallback_cores_stay_pure_and_identical(self):
        trace = _trace("mcf", n=3_000)
        for name, factory in FALLBACK_CORES.items():
            _assert_identical(factory(), trace, True,
                              expect_vector=False)

    def test_forcing_vector_without_kernel_raises(self):
        with pytest.raises(SimulationError, match="engine_tier"):
            build_core(make_ooo_config()).run(
                _trace("mcf", n=3_000), warmup=WARMUP,
                engine_tier="vector")

    def test_observer_forces_clean_fallback(self):
        core = build_core(make_casino_config())
        core.run(_trace("hmmer"), warmup=WARMUP, sanitize=True)
        assert core.engine_tier_used == "pure"

    def test_forcing_vector_with_observer_raises(self):
        with pytest.raises(SimulationError, match="engine_tier"):
            build_core(make_casino_config()).run(
                _trace("hmmer"), warmup=WARMUP, sanitize=True,
                engine_tier="vector")

    def test_pure_py_env_disables_auto_but_not_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_PURE_PY", "1")
        trace = _trace("hmmer")
        core = build_core(make_casino_config())
        core.run(trace, warmup=WARMUP)
        assert core.engine_tier_used == "pure"
        forced = build_core(make_casino_config())
        forced.run(trace, warmup=WARMUP, engine_tier="vector")
        assert forced.engine_tier_used == "vector"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="engine_tier"):
            build_core(make_ino_config()).run(
                _trace("hmmer"), warmup=WARMUP, engine_tier="jit")


class TestTraceCodec:
    @pytest.mark.parametrize("seed_shift", [0, 17])
    @pytest.mark.parametrize("app", sorted(SUITE))
    def test_roundtrip_every_suite_app(self, app, seed_shift):
        seed = SUITE[app].seed + seed_shift
        trace = _trace(app, n=1_200, seed=seed)
        key = f"{app}-{seed}"
        served = decode_trace(encode_trace(trace, key), key)
        assert len(served) == len(trace)
        for a, b in zip(trace, served):
            assert (a.seq, a.pc, a.op, a.srcs, a.dst, a.mem_addr,
                    a.mem_size, a.taken, a.target) == \
                   (b.seq, b.pc, b.op, b.srcs, b.dst, b.mem_addr,
                    b.mem_size, b.taken, b.target)
        # And a re-encode is byte-identical (canonical container).
        assert encode_trace(served, key) == encode_trace(trace, key)

    def test_malformed_containers_raise_codec_error(self):
        trace = _trace("mcf", n=600)
        raw = encode_trace(trace, "k1")
        for mutant in (b"", b"XXXX" + raw[4:],        # magic
                       raw[:40], raw[:-3],            # truncations
                       raw[:-3] + bytes(3),           # payload bit-rot
                       raw + b"\x00"):                # trailing garbage
            with pytest.raises(TraceCodecError):
                decode_trace(mutant, "k1")
        with pytest.raises(TraceCodecError):
            decode_trace(raw, "other-key")

    def test_store_quarantines_corrupt_binary_entry(self, tmp_path):
        from repro.service.store import TraceStore, trace_key
        profile = SUITE["mcf"]
        store = TraceStore(tmp_path / "traces")
        store.put(profile, 600, _trace("mcf", n=600))
        key = trace_key(profile, 600)
        path = store._path(key)
        raw = bytearray(path.read_bytes())
        raw[-8] ^= 0xFF                      # flip one payload byte
        path.write_bytes(bytes(raw))
        assert store.get(profile, 600) is None   # no crash
        assert not path.exists()                 # moved, not served
        assert (tmp_path / "traces" / "quarantine" / path.name).exists()
        assert store.stats["corrupt"] == 1
        assert store.stats["quarantined"] == 1
        # A regenerated entry serves normally afterwards.
        store.put(profile, 600, _trace("mcf", n=600))
        assert store.get(profile, 600) is not None

    def test_store_quarantines_truncated_header(self, tmp_path):
        from repro.service.store import TraceStore, trace_key
        profile = SUITE["hmmer"]
        store = TraceStore(tmp_path / "traces")
        store.put(profile, 600, _trace("hmmer", n=600))
        path = store._path(trace_key(profile, 600))
        path.write_bytes(path.read_bytes()[:16])
        assert store.get(profile, 600) is None
        assert store.stats["quarantined"] == 1


class TestSlotsPins:
    """The hot per-instruction classes must stay ``__dict__``-free (the
    vector tier's memory story) while remaining picklable (the pool
    protocol) and codec-round-trippable (the TraceStore wire)."""

    def test_hot_classes_have_no_dict(self):
        from repro.engine.core_base import InflightInst
        from repro.isa.opcodes import OpClass
        from repro.workloads.generator import _Block, _MemStream, _Slot
        inst = _trace("mcf", n=10)[0]
        samples = [inst, InflightInst(inst, []),
                   _MemStream(kind="seq", base=0, span=64),
                   _Slot(pc=0, op=OpClass.INT_ALU), _Block(pc=0)]
        for obj in samples:
            assert not hasattr(obj, "__dict__"), type(obj)
            with pytest.raises(AttributeError):
                obj.not_a_slot = 1

    def test_dyninst_pickles_and_codec_roundtrips(self, tmp_path):
        from repro.service.store import TraceStore
        trace = _trace("mcf", n=300)
        clone = pickle.loads(pickle.dumps(trace[0]))
        assert (clone.seq, clone.pc, clone.op, clone.srcs,
                clone.dst) == (trace[0].seq, trace[0].pc, trace[0].op,
                               trace[0].srcs, trace[0].dst)
        store = TraceStore(tmp_path / "traces")
        store.put(SUITE["mcf"], 300, trace)
        served = store.get(SUITE["mcf"], 300)
        assert [i.seq for i in served] == [i.seq for i in trace]
