"""Stats counters and derived metrics."""

import pytest

from repro.common.stats import Stats, geomean, normalize


class TestStats:
    def test_counters_default_zero(self):
        s = Stats()
        assert s.get("nothing") == 0.0
        assert s["nothing"] == 0.0
        assert "nothing" not in s

    def test_add_and_get(self):
        s = Stats()
        s.add("x")
        s.add("x", 2.5)
        assert s.get("x") == 3.5
        assert "x" in s

    def test_ipc(self):
        s = Stats()
        s.add("committed", 100)
        s.add("cycles", 50)
        assert s.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert Stats().ipc == 0.0

    def test_merge(self):
        a, b = Stats(), Stats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_rate(self):
        s = Stats()
        s.add("hits", 30)
        s.add("accesses", 60)
        assert s.rate("hits", "accesses") == 0.5
        assert s.rate("hits", "missing") == 0.0

    def test_subset(self):
        s = Stats()
        s.add("l1d_hits")
        s.add("l1d_misses")
        s.add("l2_hits")
        assert set(s.subset(["l1d"])) == {"l1d_hits", "l1d_misses"}


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_singleton(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestNormalize:
    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, "a")
