"""Unit tests for the conditional renamer (RAT, free lists, ProducerCount,
recovery log)."""

import dataclasses

import pytest

from repro.common.params import (
    NUM_FP_ARCH,
    NUM_INT_ARCH,
    RENAME_CONVENTIONAL,
    make_casino_config,
)
from repro.common.stats import Stats
from repro.cores.casino.rename import ConditionalRenamer
from repro.engine.core_base import InflightInst
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


def entry(dst=None, srcs=(), seq=0):
    return InflightInst(DynInst(pc=0x1000, op=OpClass.INT_ALU,
                                srcs=srcs, dst=dst, seq=seq), [])


def make_renamer(**overrides):
    cfg = dataclasses.replace(make_casino_config(), **overrides)
    return ConditionalRenamer(cfg, Stats()), cfg


class TestAllocation:
    def test_initial_free_counts(self):
        renamer, cfg = make_renamer()
        assert renamer.free_int == cfg.prf_int - NUM_INT_ARCH
        assert renamer.free_fp == cfg.prf_fp - NUM_FP_ARCH

    def test_speculative_alloc_consumes_register(self):
        renamer, _ = make_renamer()
        before = renamer.free_int
        e = entry(dst=1)
        renamer.rename_speculative(e)
        assert renamer.free_int == before - 1
        assert e.fresh_phys
        assert renamer.rat[1] == e.phys

    def test_fp_class_separate(self):
        renamer, _ = make_renamer()
        e = entry(dst=NUM_INT_ARCH + 1)
        before_int, before_fp = renamer.free_int, renamer.free_fp
        renamer.rename_speculative(e)
        assert renamer.free_int == before_int
        assert renamer.free_fp == before_fp - 1

    def test_can_alloc_exhaustion(self):
        renamer, cfg = make_renamer(prf_int=NUM_INT_ARCH + 1)
        assert renamer.can_alloc(1)
        renamer.rename_speculative(entry(dst=1))
        assert not renamer.can_alloc(2)
        assert renamer.can_alloc(None)  # no destination: always fine

    def test_commit_releases_previous_mapping(self):
        renamer, _ = make_renamer()
        e1, e2 = entry(dst=1, seq=0), entry(dst=1, seq=1)
        renamer.rename_speculative(e1)
        renamer.rename_speculative(e2)
        free = renamer.free_int
        renamer.commit(e1)
        renamer.commit(e2)
        assert renamer.free_int == free + 2


class TestPassing:
    def test_pass_does_not_allocate(self):
        renamer, _ = make_renamer()
        before = renamer.free_int
        e = entry(dst=1)
        renamer.rename_passed(e)
        assert renamer.free_int == before
        assert not e.fresh_phys
        assert renamer.pending[e.phys] == 1

    def test_producer_count_bound(self):
        renamer, cfg = make_renamer()
        for i in range(cfg.producer_count_max):
            assert renamer.can_pass(1)
            renamer.rename_passed(entry(dst=1, seq=i))
        assert not renamer.can_pass(1)

    def test_iq_issue_decrements(self):
        renamer, _ = make_renamer()
        e = entry(dst=1)
        renamer.rename_passed(e)
        renamer.on_iq_issue(e)
        assert not renamer.pending
        assert renamer.can_pass(1)

    def test_new_alloc_resets_sharing_chain(self):
        """A speculative redefinition maps the register to a fresh name;
        passing resumes on the new mapping."""
        renamer, cfg = make_renamer()
        for i in range(cfg.producer_count_max):
            renamer.rename_passed(entry(dst=1, seq=i))
        assert not renamer.can_pass(1)
        renamer.rename_speculative(entry(dst=1, seq=10))
        assert renamer.can_pass(1)  # new physical register, count 0

    def test_conventional_pass_allocates(self):
        renamer, _ = make_renamer(rename_scheme=RENAME_CONVENTIONAL)
        before = renamer.free_int
        e = entry(dst=1)
        renamer.rename_passed(e)
        assert renamer.free_int == before - 1
        assert e.fresh_phys


class TestRecovery:
    def test_squash_restores_rat_and_free_list(self):
        renamer, _ = make_renamer()
        home = renamer.rat[1]
        free = renamer.free_int
        e1, e2 = entry(dst=1, seq=0), entry(dst=1, seq=1)
        renamer.rename_speculative(e1)
        renamer.rename_speculative(e2)
        renamer.squash([e2, e1])  # young -> old
        assert renamer.rat[1] == home
        assert renamer.free_int == free

    def test_squash_unwinds_producer_count(self):
        renamer, _ = make_renamer()
        e = entry(dst=1)
        renamer.rename_passed(e)
        renamer.squash([e])
        assert not renamer.pending

    def test_squash_skips_issued_iq_instructions(self):
        """An IQ instruction that already issued decremented its count at
        issue; squash must not decrement twice."""
        renamer, _ = make_renamer()
        e1, e2 = entry(dst=1, seq=0), entry(dst=1, seq=1)
        renamer.rename_passed(e1)
        renamer.rename_passed(e2)
        e1.issue_at = 7
        renamer.on_iq_issue(e1)
        renamer.squash([e2])
        assert renamer.pending.get(e1.phys, 0) == 0

    def test_partial_squash_keeps_older_mapping(self):
        renamer, _ = make_renamer()
        e1, e2 = entry(dst=1, seq=0), entry(dst=1, seq=1)
        renamer.rename_speculative(e1)
        renamer.rename_speculative(e2)
        renamer.squash([e2])
        assert renamer.rat[1] == e1.phys


class TestValidation:
    def test_prf_smaller_than_arch_rejected(self):
        with pytest.raises(ValueError):
            make_renamer(prf_int=NUM_INT_ARCH - 1)

    def test_alloc_without_check_asserts(self):
        renamer, _ = make_renamer(prf_int=NUM_INT_ARCH)
        with pytest.raises(AssertionError):
            renamer.rename_speculative(entry(dst=1))
