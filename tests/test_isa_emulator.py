"""Functional emulator semantics, including end-to-end kernel checks."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import EmulationError, Emulator, trace_program
from repro.isa.opcodes import OpClass
from repro.workloads.kernels import (
    daxpy_program,
    histogram_program,
    pointer_chase_program,
    reduction_program,
    stencil3_program,
)


def run_regs(src, memory=None):
    emu = Emulator(assemble(src), memory=memory)
    list(emu.run())
    return emu


class TestArithmetic:
    def test_li_add(self):
        emu = run_regs("li r1, 5\nli r2, 7\nadd r3, r1, r2\nhalt")
        assert emu.regs[3] == 12

    def test_sub_and_negative_wrap(self):
        emu = run_regs("li r1, 3\nli r2, 5\nsub r3, r1, r2\nhalt")
        assert emu.regs[3] == (3 - 5) % (1 << 64)

    def test_logic_shift(self):
        emu = run_regs("li r1, 12\nli r2, 10\nand r3, r1, r2\n"
                       "or r4, r1, r2\nxor r5, r1, r2\nslli r6, r1, 2\nhalt")
        assert emu.regs[3] == 8
        assert emu.regs[4] == 14
        assert emu.regs[5] == 6
        assert emu.regs[6] == 48

    def test_mul_div(self):
        emu = run_regs("li r1, 6\nli r2, 7\nmul r3, r1, r2\n"
                       "div r4, r3, r1\nhalt")
        assert emu.regs[3] == 42
        assert emu.regs[4] == 7

    def test_div_by_zero_raises(self):
        with pytest.raises(EmulationError, match="division by zero"):
            run_regs("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt")

    def test_slt_signed(self):
        emu = run_regs("li r1, 0\nli r2, 1\nsub r3, r1, r2\n"
                       "slt r4, r3, r1\nhalt")
        assert emu.regs[4] == 1  # -1 < 0


class TestMemory:
    def test_store_load_roundtrip(self):
        emu = run_regs("li r1, 4096\nli r2, 99\nst r2, 0(r1)\n"
                       "ld r3, 0(r1)\nhalt")
        assert emu.regs[3] == 99

    def test_offset_addressing(self):
        emu = run_regs("li r1, 4096\nli r2, 7\nst r2, 24(r1)\n"
                       "ld r3, 24(r1)\nhalt")
        assert emu.regs[3] == 7

    def test_uninitialised_memory_is_deterministic(self):
        a = run_regs("li r1, 8192\nld r2, 0(r1)\nhalt")
        b = run_regs("li r1, 8192\nld r2, 0(r1)\nhalt")
        assert a.regs[2] == b.regs[2]

    def test_initial_memory_image(self):
        emu = run_regs("li r1, 100\nld r2, 0(r1)\nhalt", memory={100: 1234})
        assert emu.regs[2] == 1234

    def test_trace_records_addresses(self):
        trace = trace_program(assemble("li r1, 4096\nld r2, 8(r1)\nhalt"))
        load = [d for d in trace if d.is_load][0]
        assert load.mem_addr == 4104
        assert load.mem_size == 8


class TestControlFlow:
    def test_loop_count(self):
        emu = run_regs("""
            li r1, 0
            li r2, 10
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        assert emu.regs[1] == 10

    def test_branch_records_outcome(self):
        trace = trace_program(assemble("""
            li r1, 0
            li r2, 2
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """))
        branches = [d for d in trace if d.op is OpClass.BRANCH]
        assert [b.taken for b in branches] == [True, False]
        assert branches[0].target == 0x1008

    def test_jump(self):
        emu = run_regs("li r1, 1\njmp skip\nli r1, 2\nskip: halt")
        assert emu.regs[1] == 1

    def test_runaway_guard(self):
        prog = assemble("loop: jmp loop")
        with pytest.raises(EmulationError, match="exceeded"):
            list(Emulator(prog, max_insts=100).run())


class TestKernels:
    def test_daxpy_computes_y(self):
        program, memory = daxpy_program(n=32, unroll=4, passes=1)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        # y[i] = 3*x[i] + y[i] with x[i] = i+1, y[i] = 2i
        for i in range(32):
            assert emu.memory[0x20_0000 + 8 * i] == 3 * (i + 1) + 2 * i

    def test_daxpy_passes_accumulate(self):
        program, memory = daxpy_program(n=8, unroll=4, passes=2)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        # After two passes: y = 2*3x + y0.
        for i in range(8):
            assert emu.memory[0x20_0000 + 8 * i] == 6 * (i + 1) + 2 * i

    def test_reduction_sums(self):
        program, memory = reduction_program(n=64)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        from repro.common.params import NUM_INT_ARCH
        assert emu.regs[NUM_INT_ARCH + 0] == sum(range(64))  # f0

    def test_histogram_counts(self):
        program, memory = histogram_program(n=128, buckets=16)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        total = sum(emu.memory[0x60_0000 + 8 * b] for b in range(16))
        assert total == 128

    def test_pointer_chase_walks_all_nodes(self):
        program, memory = pointer_chase_program(nodes=16, hops=16)
        trace = list(Emulator(program, memory=memory).run())
        load_addrs = {d.mem_addr for d in trace if d.is_load}
        assert len(load_addrs) == 16  # every node visited exactly once

    def test_stencil_writes_sums(self):
        program, memory = stencil3_program(n=16)
        emu = Emulator(program, memory=memory)
        list(emu.run())
        # out[i] = a[i-1] + a[i] + a[i+1] with a[i] = i+1
        for i in range(1, 15):
            assert emu.memory[0x80_0000 + 8 * (i - 1)] == 3 * (i + 1)
