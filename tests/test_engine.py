"""Engine plumbing: FU pool, dataflow bookkeeping, run-loop guards."""

import pytest

from repro.common.params import make_casino_config, make_ino_config
from repro.cores import build_core
from repro.engine.core_base import CoreModel, InflightInst, SimulationError
from repro.engine.funits import FuPool
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FuType, OpClass
from tests.util import alu, div, independent_ops, with_pcs


class TestFuPool:
    def test_capacity_per_type(self):
        fu = FuPool(make_ino_config())
        assert fu.take(OpClass.INT_ALU)
        assert fu.take(OpClass.INT_ALU)
        assert not fu.take(OpClass.INT_ALU)  # 2 ALUs
        assert fu.take(OpClass.FP_ADD)       # FPUs independent

    def test_agu_shared_by_loads_and_stores(self):
        fu = FuPool(make_ino_config())
        assert fu.take(OpClass.LOAD)
        assert fu.take(OpClass.STORE)
        assert not fu.take(OpClass.LOAD_FP)

    def test_reset_restores(self):
        fu = FuPool(make_ino_config())
        fu.take(OpClass.INT_ALU)
        fu.take(OpClass.INT_ALU)
        fu.reset()
        assert fu.take(OpClass.INT_ALU)

    def test_store_port_single(self):
        fu = FuPool(make_ino_config())
        assert fu.take_store_port()
        assert not fu.take_store_port()
        fu.reset()
        assert fu.take_store_port()

    def test_available_does_not_consume(self):
        fu = FuPool(make_ino_config())
        assert fu.available(OpClass.INT_MUL)
        assert fu.available(OpClass.INT_MUL)
        fu.take(OpClass.INT_MUL)
        fu.take(OpClass.INT_DIV)
        assert not fu.available(OpClass.INT_ALU)


class TestInflightInst:
    def test_ready_with_no_producers(self):
        e = InflightInst(DynInst(pc=0, op=OpClass.INT_ALU, srcs=(1,)), [])
        assert e.ready(0)

    def test_ready_tracks_producer_completion(self):
        p = InflightInst(DynInst(pc=0, op=OpClass.INT_ALU, dst=1, seq=0), [])
        c = InflightInst(DynInst(pc=4, op=OpClass.INT_ALU, srcs=(1,),
                                 dst=2, seq=1), [p])
        assert not c.ready(10)
        p.done_at = 5
        assert not c.ready(4)
        assert c.ready(5)

    def test_overlaps(self):
        a = DynInst(pc=0, op=OpClass.STORE, srcs=(1, 2), mem_addr=0x100,
                    mem_size=8)
        b = DynInst(pc=4, op=OpClass.LOAD, srcs=(1,), dst=3, mem_addr=0x104,
                    mem_size=8)
        c = DynInst(pc=8, op=OpClass.LOAD, srcs=(1,), dst=3, mem_addr=0x108,
                    mem_size=8)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_overlaps_requires_addresses(self):
        a = DynInst(pc=0, op=OpClass.INT_ALU, dst=1)
        b = DynInst(pc=4, op=OpClass.LOAD, srcs=(1,), dst=2, mem_addr=0x100)
        assert not a.overlaps(b)


class TestDataflowBookkeeping:
    def test_make_entry_wires_last_writer(self):
        core = build_core(make_ino_config())
        core.reset(with_pcs([alu(1), alu(2, (1,))]))
        e1 = core.make_entry(core.stream.fetch())
        e2 = core.make_entry(core.stream.fetch())
        assert e2.producers == [e1]

    def test_committed_writers_pruned(self):
        core = build_core(make_ino_config())
        core.reset(with_pcs([alu(1), alu(2, (1,))]))
        e1 = core.make_entry(core.stream.fetch())
        e1.done_at = 0
        core.note_commit(e1, 0)
        e2 = core.make_entry(core.stream.fetch())
        assert e2.producers == []  # committed producer never gates

    def test_clean_last_writers_drops_squashed(self):
        core = build_core(make_ino_config())
        core.reset(with_pcs([alu(1), alu(2)]))
        core.make_entry(core.stream.fetch())
        core.make_entry(core.stream.fetch())
        core.clean_last_writers(1)
        assert 2 not in core.last_writer
        assert 1 in core.last_writer


class TestRunLoopGuards:
    def test_out_of_order_commit_raises(self):
        core = build_core(make_ino_config())
        core.reset(with_pcs([alu(1), alu(2)]))
        e1 = core.make_entry(core.stream.fetch())
        e2 = core.make_entry(core.stream.fetch())
        with pytest.raises(SimulationError, match="out-of-order commit"):
            core.note_commit(e2, 0)

    def test_max_cycles_guard(self):
        core = build_core(make_ino_config())
        with pytest.raises(SimulationError, match="exceeded"):
            core.run(with_pcs([div(1) for _ in range(50)]), max_cycles=10)

    def test_warm_icache_removes_l1i_misses(self):
        trace = independent_ops(30)
        cold = build_core(make_ino_config()).run(with_pcs(list(trace)))
        warm = build_core(make_ino_config()).run(with_pcs(list(trace)),
                                                 warm_icache=True)
        assert warm.get("l1i_misses") == 0
        assert cold.get("l1i_misses") >= 1
        assert warm.cycles < cold.cycles


class TestBranchEndToEnd:
    def _branchy_trace(self, n_iters=30):
        """A loop whose branch alternates takenness unpredictably-ish."""
        out = []
        for i in range(n_iters):
            out.append(DynInst(pc=0x1000, op=OpClass.INT_ALU, dst=1))
            out.append(DynInst(pc=0x1004, op=OpClass.INT_ALU, srcs=(1,),
                               dst=2))
            taken = (i * 7) % 3 == 0
            out.append(DynInst(pc=0x1008, op=OpClass.BRANCH, srcs=(2,),
                               taken=taken,
                               target=0x1000 if taken else None))
        return out

    def test_mispredicts_cost_cycles(self):
        import dataclasses
        trace = self._branchy_trace()
        cfg = make_ino_config()
        base = build_core(cfg).run(list(trace), warm_icache=True)
        cheap = build_core(dataclasses.replace(
            cfg, mispredict_penalty=0)).run(list(trace), warm_icache=True)
        assert base.get("fetch_mispredict_gates") > 0
        assert cheap.cycles <= base.cycles

    def test_branch_resolution_unblocks_fetch(self):
        trace = self._branchy_trace(10)
        stats = build_core(make_casino_config()).run(list(trace),
                                                     warm_icache=True)
        assert stats.committed == len(trace)
        assert stats.get("branch_redirects") == stats.get(
            "fetch_mispredict_gates")
