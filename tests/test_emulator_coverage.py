"""Exhaustive mnemonic coverage for the assembler + emulator pair."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.common.params import NUM_INT_ARCH


def run(src, memory=None):
    emu = Emulator(assemble(src), memory=memory)
    list(emu.run())
    return emu


F = NUM_INT_ARCH  # first fp register id


class TestIntegerMnemonics:
    def test_mv(self):
        assert run("li r1, 7\nmv r2, r1\nhalt").regs[2] == 7

    def test_andi_srli_slti(self):
        emu = run("li r1, 0xFF\nandi r2, r1, 0x0F\nsrli r3, r1, 4\n"
                  "slti r4, r1, 300\nhalt")
        assert emu.regs[2] == 0x0F
        assert emu.regs[3] == 0x0F
        assert emu.regs[4] == 1

    def test_subi(self):
        assert run("li r1, 10\nsubi r2, r1, 3\nhalt").regs[2] == 7

    def test_sll_with_register(self):
        assert run("li r1, 3\nli r2, 2\nsll r3, r1, r2\nhalt").regs[3] == 12

    def test_nop_advances(self):
        emu = run("nop\nli r1, 1\nhalt")
        assert emu.regs[1] == 1


class TestFpMnemonics:
    def test_fli_fmv(self):
        emu = run("fli f0, 5\nfmv f1, f0\nhalt")
        assert emu.regs[F + 1] == 5

    def test_fsub_fmul_fdiv(self):
        emu = run("fli f0, 20\nfli f1, 4\nfsub f2, f0, f1\n"
                  "fmul f3, f0, f1\nfdiv f4, f0, f1\nhalt")
        assert emu.regs[F + 2] == 16
        assert emu.regs[F + 3] == 80
        assert emu.regs[F + 4] == 5

    def test_fdiv_by_zero_is_zero(self):
        emu = run("fli f0, 20\nfli f1, 0\nfdiv f2, f0, f1\nhalt")
        assert emu.regs[F + 2] == 0

    def test_itof_ftoi_roundtrip(self):
        emu = run("li r1, 42\nitof f0, r1\nftoi r2, f0\nhalt")
        assert emu.regs[2] == 42

    def test_fld_fst(self):
        emu = run("li r1, 4096\nfli f0, 9\nfst f0, 0(r1)\n"
                  "fld f1, 0(r1)\nhalt")
        assert emu.regs[F + 1] == 9


class TestBranchMnemonics:
    @pytest.mark.parametrize("op,a,b,expect", [
        ("beq", 5, 5, 1), ("beq", 5, 6, 0),
        ("bne", 5, 6, 1), ("bne", 5, 5, 0),
        ("blt", 4, 5, 1), ("blt", 5, 4, 0),
        ("bge", 5, 5, 1), ("bge", 4, 5, 0),
    ])
    def test_branch_semantics(self, op, a, b, expect):
        emu = run(f"""
            li r1, {a}
            li r2, {b}
            li r3, 0
            {op} r1, r2, taken
            jmp end
        taken:
            li r3, 1
        end:
            halt
        """)
        assert emu.regs[3] == expect

    def test_negative_comparison(self):
        emu = run("""
            li r1, 0
            subi r1, r1, 5    ; r1 = -5
            li r2, 0
            li r3, 0
            blt r1, r2, neg
            jmp end
        neg:
            li r3, 1
        end:
            halt
        """)
        assert emu.regs[3] == 1
