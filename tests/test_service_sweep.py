"""Acceptance: pooled figure sweeps match serial bit-for-bit and a
warm-store rerun performs zero simulations."""

import pytest

from repro.common.params import (
    make_casino_config,
    make_freeway_config,
    make_ino_config,
    make_lsc_config,
    make_ooo_config,
)
from repro.experiments import fig6_ipc
from repro.harness.resilience import ResilientRunner, SweepCheckpoint
from repro.obs.provenance import counter_digest
from repro.service.pool import SimulationPool
from repro.service.runner import PooledRunner
from repro.service.store import ResultStore
from repro.workloads.suite import SUITE

N, WARMUP = 1200, 200
APPS = ["hmmer", "mcf", "milc"]
CONFIGS = [make_ino_config(), make_lsc_config(), make_freeway_config(),
           make_casino_config(), make_ooo_config()]


@pytest.fixture()
def profiles():
    return [SUITE[app] for app in APPS]


def _serial_figure(profiles):
    runner = ResilientRunner(n_instrs=N, warmup=WARMUP)
    return runner, fig6_ipc.run(runner, profiles)


class TestPooledFigureParity:
    def test_fig6_identical_to_serial(self, profiles):
        serial_runner, serial = _serial_figure(profiles)
        with SimulationPool(n_workers=2) as pool:
            pooled_runner = PooledRunner(pool, n_instrs=N, warmup=WARMUP)
            pooled = pooled_runner.run_figure(fig6_ipc.run, profiles)
        assert pooled == serial
        # Counter digests agree on every (core, app) pair — both runners
        # memoise, so these lookups trigger no extra simulation.
        for cfg in CONFIGS:
            for profile in profiles:
                ser = serial_runner.run(cfg, profile)
                par = pooled_runner.run(cfg, profile)
                assert counter_digest(ser.stats) == \
                    counter_digest(par.stats), (cfg.name, profile.name)

    def test_collect_pass_batches_whole_grid(self, profiles):
        with SimulationPool(n_workers=1) as pool:
            runner = PooledRunner(pool, n_instrs=N, warmup=WARMUP)
            runner.run_figure(fig6_ipc.run, profiles)
            # 5 configs x 3 apps, all discovered by the collect pass and
            # submitted as one batch.
            assert pool.stats["submitted"] == len(CONFIGS) * len(profiles)
        assert not runner.failures and not runner.excluded


class TestWarmStoreRerun:
    def test_rerun_performs_zero_simulations(self, tmp_path, profiles):
        store_dir = tmp_path / "store"
        with SimulationPool(n_workers=1,
                            store=ResultStore(store_dir)) as pool:
            runner = PooledRunner(pool, n_instrs=N, warmup=WARMUP)
            cold = runner.run_figure(fig6_ipc.run, profiles)
            n_pairs = len(CONFIGS) * len(profiles)
            assert pool.stats["dispatched"] == n_pairs

        # Fresh pool, fresh runner, same store: everything cache-served.
        warm_store = ResultStore(store_dir)
        with SimulationPool(n_workers=1, store=warm_store) as pool:
            runner = PooledRunner(pool, n_instrs=N, warmup=WARMUP)
            warm = runner.run_figure(fig6_ipc.run, profiles)
            assert pool.stats["dispatched"] == 0, \
                "warm rerun must not simulate anything"
            assert pool.stats["cached"] == n_pairs
        assert warm_store.stats["hits"] == n_pairs
        assert warm_store.stats["misses"] == 0
        assert warm == cold


class TestSweepIntegration:
    def test_run_sweep_with_pooled_runner(self, tmp_path, profiles):
        from repro.experiments.sweep import run_sweep
        ckpt = SweepCheckpoint(str(tmp_path / "ckpt.json"))
        serial_ckpt = SweepCheckpoint(str(tmp_path / "ckpt-serial.json"))
        jobs = [("Figure 6", fig6_ipc.run)]
        serial_runner = ResilientRunner(n_instrs=N, warmup=WARMUP)
        serial = run_sweep(serial_runner, profiles, serial_ckpt,
                           jobs=jobs, echo=lambda line: None)
        with SimulationPool(n_workers=1) as pool:
            runner = PooledRunner(pool, n_instrs=N, warmup=WARMUP)
            pooled = run_sweep(runner, profiles, ckpt, jobs=jobs,
                               echo=lambda line: None)
        assert pooled == serial
