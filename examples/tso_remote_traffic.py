#!/usr/bin/env python
"""Total store ordering without a load queue (Section III-C4, last part).

CASINO enforces load->load ordering by pinning the cache line of every
speculatively-issued load with a sentinel: an invalidation from a *remote*
core's store is not acknowledged until the pinning load commits.  This
example drives a CASINO core cycle by cycle while a synthetic remote agent
fires invalidations at the lines the core is reading, and reports how many
were withheld — the mechanism that lets CASINO drop the load queue while
staying TSO-compliant.

Run:  python examples/tso_remote_traffic.py
"""

import random

from repro import build_core, get_profile, make_casino_config
from repro.workloads.generator import SyntheticWorkload


def main() -> None:
    core = build_core(make_casino_config())
    trace = SyntheticWorkload(get_profile("h264ref")).generate(8000)
    core.reset(trace)

    rng = random.Random(7)
    recent_lines = []
    fired = acked = nacked = 0

    cycle = 0
    while not (core.fetch.drained and core.pipeline_empty()):
        core.cycle = cycle
        core.fu.reset()
        core._step(cycle)
        core.fetch.tick(cycle)
        # Track lines the core touches so the "remote core" contends
        # realistically.
        pinned = list(core.hier.line_sentinels)
        if pinned:
            recent_lines.extend(pinned)
            del recent_lines[:-64]
        # Every ~20 cycles the remote agent tries to invalidate a line the
        # core recently read speculatively.
        if cycle % 20 == 7 and recent_lines:
            line = rng.choice(recent_lines)
            fired += 1
            if core.hier.invalidate(line << 6, cycle):
                acked += 1
            else:
                nacked += 1
        cycle += 1
        if cycle > 2_000_000:
            raise RuntimeError("runaway")

    stats = core.stats
    print(f"committed {int(stats.get('committed'))} instructions in "
          f"{cycle} cycles (IPC {stats.get('committed') / cycle:.3f})")
    print(f"remote invalidations fired: {fired}")
    print(f"  acknowledged immediately: {acked}")
    print(f"  withheld by line sentinels (TSO enforcement): {nacked}")
    print(f"pins outstanding at the end: {len(core.hier.line_sentinels)} "
          f"(must be 0)")
    print("\nReading: while a speculatively-issued load is in flight, the "
          "remote store cannot complete against its line, so no other core "
          "can observe a store order that contradicts this core's load "
          "order - total store ordering without any load-queue search.")


if __name__ == "__main__":
    main()
