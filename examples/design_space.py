#!/usr/bin/env python
"""Design-space walk: how big should each scheduling window be?

Sweeps the CASINO-specific knobs on a small app mix and prints the trends
the paper uses to pick its design point (Figure 10 and Section VI-F):

* the S-IQ/IQ split of the 16-entry scheduling budget,
* the SpecInO [WS, SO] window policy,
* the OSCA size,
* issue width (with cascaded intermediate S-IQs).

Run:  python examples/design_space.py
"""

import dataclasses

from repro import Runner, get_profile, make_casino_config
from repro.common.stats import geomean
from repro.harness.tables import format_table

APPS = ["hmmer", "mcf", "cactusADM", "h264ref", "milc"]


def sweep(runner, profiles, configs, label):
    rows = []
    base = None
    for cfg in configs:
        perf = geomean(runner.run(cfg, p).ipc for p in profiles)
        if base is None:
            base = perf
        rows.append([cfg.name, perf, perf / base])
    print(label)
    print(format_table(["config", "geomean IPC", "relative"], rows))
    print()


def main() -> None:
    runner = Runner(n_instrs=12_000, warmup=3_000)
    profiles = [get_profile(a) for a in APPS]
    base = make_casino_config()

    sweep(runner, profiles, [
        dataclasses.replace(base, name=f"siq{s}/iq{16 - s}",
                            siq_size=s, iq_size=16 - s)
        for s in (2, 4, 6, 8)
    ], "S-IQ/IQ split of a 16-entry budget (Table I point: 4/12)")

    sweep(runner, profiles, [
        dataclasses.replace(base, name=f"[{ws},{so}]",
                            specino_ws=ws, specino_so=so)
        for ws, so in ((1, 1), (2, 1), (2, 2), (4, 2))
    ], "SpecInO window policy (paper's optimum: [2,1])")

    sweep(runner, profiles, [
        dataclasses.replace(base, name=f"osca{n}", osca_entries=n)
        for n in (8, 16, 64, 256)
    ], "OSCA size (paper point: 64 counters)")

    sweep(runner, profiles, [
        dataclasses.replace(make_casino_config(w), name=f"{w}-way")
        for w in (2, 3, 4)
    ], "Issue width with cascaded intermediate S-IQs (Section VI-F)")


if __name__ == "__main__":
    main()
