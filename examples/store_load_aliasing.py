#!/usr/bin/env python
"""Memory disambiguation under heavy store->load aliasing (the h264ref story).

The paper observes that on h264ref the OoO core suffers frequent memory-order
violations despite its dependence predictor, while CASINO's sequential
examination at the S-IQ/IQ heads makes violations rare — so CASINO slightly
beats OoO there.  This example reproduces that anatomy on the aliasing-heavy
synthetic h264ref plus the histogram kernel (read-modify-write on a small
table), and shows what the OSCA filter saves.

Run:  python examples/store_load_aliasing.py
"""

import dataclasses

from repro import build_core, get_profile, make_casino_config, make_ooo_config
from repro.common.params import DISAMBIG_NOLQ
from repro.harness.tables import format_table
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import kernel_trace


def run(cfg, trace, warmup):
    stats = build_core(cfg).run(list(trace), warmup=warmup)
    return stats


def main() -> None:
    casino = make_casino_config()
    casino_noosca = dataclasses.replace(casino, name="casino-no-osca",
                                        disambiguation=DISAMBIG_NOLQ)
    ooo = make_ooo_config()
    ooo_nopred = dataclasses.replace(ooo, name="ooo-no-predictor",
                                     store_sets=False)

    headers = ["core", "IPC", "violations", "squashes", "SQ searches",
               "LQ searches", "forwards", "OSCA skips"]

    for title, trace, warm in [
        ("synthetic h264ref (alias_frac=0.30)",
         SyntheticWorkload(get_profile("h264ref")).generate(24_000), 6000),
        ("histogram kernel (RMW on a 64-bucket table)",
         kernel_trace("histogram", n=2048, buckets=64), 2000),
    ]:
        print(title)
        rows = []
        for cfg in (ooo, ooo_nopred, casino_noosca, casino):
            s = run(cfg, trace, warm)
            rows.append([cfg.name, s.ipc,
                         int(s.get("mem_order_violations")),
                         int(s.get("squashes")),
                         int(s.get("sq_searches")),
                         int(s.get("lq_searches")),
                         int(s.get("stl_forwards")),
                         int(s.get("osca_search_skips"))])
        print(format_table(headers, rows))
        print()

    print("Reading: the predictor-less OoO squashes constantly; store sets "
          "recover most of it; CASINO's on-commit value-check needs no LQ "
          "searches at all, and the OSCA removes most of the remaining SQ "
          "searches without changing performance.")


if __name__ == "__main__":
    main()
