#!/usr/bin/env python
"""Quickstart: simulate one application on the three Table I cores.

Builds the InO baseline, the CASINO core and the OoO core, runs the same
synthetic `milc`-like workload on each, and prints IPC, speedup, energy and
the Table I configuration — the 60-second tour of the library.

Run:  python examples/quickstart.py [app-name]
"""

import sys

from repro import (
    Runner,
    build_power_model,
    get_profile,
    make_casino_config,
    make_ino_config,
    make_ooo_config,
)
from repro.harness.tables import format_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "milc"
    profile = get_profile(app)
    print(f"Application: {app} (synthetic stand-in; {profile.n_instrs} "
          f"instructions, footprint {profile.footprint_kib} KiB)\n")

    configs = [make_ino_config(), make_casino_config(), make_ooo_config()]

    print("Table I configuration")
    rows = []
    for cfg in configs:
        window = (f"{cfg.siq_size}(S-IQ)/{cfg.iq_size}(IQ)"
                  if cfg.kind == "casino" else f"{cfg.iq_size}")
        prf = (f"{cfg.prf_int} INT, {cfg.prf_fp} FP"
               if cfg.kind != "ino" else "-")
        rows.append([cfg.name, f"{cfg.width}-wide", window,
                     cfg.sq_sb_size, prf,
                     f"{cfg.rob_size}-entry ROB" if cfg.kind != "ino"
                     else f"{cfg.scb_size}-entry SCB"])
    print(format_table(
        ["core", "width", "issue queue", "SQ/SB", "phys regs", "window"],
        rows))

    runner = Runner()
    results = {cfg.name: runner.run(cfg, profile) for cfg in configs}
    base = results["ino"]

    print("\nSimulation results")
    rows = []
    for cfg in configs:
        res = results[cfg.name]
        area = build_power_model(cfg).area_mm2()
        rows.append([
            cfg.name,
            res.ipc,
            res.ipc / base.ipc,
            res.energy.total_j / base.energy.total_j,
            (res.ipc / base.ipc)
            / (res.energy.total_j / base.energy.total_j),
            area,
        ])
    print(format_table(
        ["core", "IPC", "speedup", "energy (rel)", "perf/energy", "area mm2"],
        rows))

    casino = results["casino"].stats
    spec = casino.get("issued_spec") / max(1.0, casino.get("issued"))
    print(f"\nCASINO issued {spec:.0%} of instructions speculatively from "
          f"the S-IQ (paper: ~65% on SPEC CPU2006).")


if __name__ == "__main__":
    main()
