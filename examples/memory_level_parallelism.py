#!/usr/bin/env python
"""MLP anatomy: why CASINO wins on miss-heavy code and ties on pointer chasing.

Runs two kernels on the functional emulator and one synthetic application,
then shows how each scheduler copes:

* ``daxpy``          — independent iterations: misses overlap, CASINO and
  OoO extract memory-level parallelism that the stall-on-use InO cannot.
* ``pointer_chase``  — a dependent miss chain: *no* scheduler can overlap
  the misses, so all three cores converge (Section II's motivation).
* ``mcf``            — the synthetic large-footprint application mixing both.

Run:  python examples/memory_level_parallelism.py
"""

from repro import build_core, get_profile, make_casino_config, make_ino_config, make_ooo_config
from repro.harness.tables import format_table
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.kernels import kernel_trace

CONFIGS = [make_ino_config(), make_casino_config(), make_ooo_config()]


def run_all(trace, warmup):
    rows = []
    for cfg in CONFIGS:
        stats = build_core(cfg).run(list(trace), warmup=warmup)
        mlp_proxy = stats.get("l1d_mshr_merges") + stats.get("l2_mshr_merges")
        rows.append([cfg.name, stats.ipc,
                     stats.get("dram_accesses"),
                     mlp_proxy,
                     stats.get("issued_spec", 0)])
    return rows


def main() -> None:
    headers = ["core", "IPC", "DRAM accesses", "overlapped misses",
               "spec issues"]

    print("daxpy (independent iterations - MLP available)")
    trace = kernel_trace("daxpy", n=2048, passes=3)
    print(format_table(headers, run_all(trace, warmup=2000)))

    print("\npointer_chase (dependent miss chain - no MLP to extract)")
    trace = kernel_trace("pointer_chase", nodes=1024, hops=4000)
    print(format_table(headers, run_all(trace, warmup=1000)))

    print("\nmcf-like synthetic application (mixed)")
    trace = SyntheticWorkload(get_profile("mcf")).generate(24_000)
    print(format_table(headers, run_all(trace, warmup=6000)))

    print("\nReading: on daxpy the windowed cores overlap misses "
          "(high 'overlapped misses', big IPC gap over InO); on "
          "pointer_chase every load depends on the previous one, so the "
          "three cores converge - exactly the contrast that motivates "
          "speculative in-order scheduling in the paper.")


if __name__ == "__main__":
    main()
