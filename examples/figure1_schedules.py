#!/usr/bin/env python
"""Reproduce the paper's Figure 1: the same snippet on four schedulers.

The scenario: a cache-missing load heads a dependence chain (i1..i4) while
independent, ready instructions (i5, i7, i9) sit behind it.  In-order
scheduling stalls at the first consumer; OoO issues the ready ones
immediately; CASINO's S-IQ speculatively issues them too (marked ``*``)
while the chain is passed to the in-order IQ — an out-of-order schedule
from cascaded in-order windows.

Run:  python examples/figure1_schedules.py
"""

from repro import (
    build_core,
    make_casino_config,
    make_ino_config,
    make_ooo_config,
    make_specino_config,
)
from repro.harness.timeline import issue_order, render_timeline
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


def snippet():
    """i0 is a cache-missing load; i1..i3 chain on it; i4/i6/i8 are ready."""
    def alu(dst, srcs=()):
        return DynInst(pc=0, op=OpClass.INT_ALU, srcs=tuple(srcs), dst=dst)

    return [
        DynInst(pc=0, op=OpClass.LOAD, srcs=(15,), dst=1,
                mem_addr=0x80_0000, mem_size=8),   # i0: missing load
        alu(2, (1,)),                              # i1: consumer chain
        alu(3, (2,)),
        alu(4, (3,)),
        alu(5),                                    # i4: ready
        alu(6, (5,)),
        alu(7),                                    # i6: ready
        alu(8, (7,)),
        alu(9),                                    # i8: ready
        alu(10, (9,)),
    ]


def main() -> None:
    trace = snippet()
    for i, inst in enumerate(trace):
        inst.pc = 0x1000 + 4 * i

    for cfg in (make_ino_config(), make_specino_config(2, 1),
                make_casino_config(), make_ooo_config()):
        core = build_core(cfg)
        core.run(list(trace), warm_icache=True, record_schedule=True)
        print(f"=== {cfg.name} ===")
        print(render_timeline(core.schedule, tag_spec=cfg.kind == "casino"))
        print(f"issue order: {issue_order(core.schedule)}\n")


if __name__ == "__main__":
    main()
